// Escalation bench: the adaptive supervisor against the standard
// adversarial library, with machine-readable detection/overhead
// telemetry.
//
//   $ ./bench_escalation               # full run (48 windows x 3 trials)
//   $ OTF_SMOKE=1 ./bench_escalation   # ctest / verify.sh smoke entry
//   $ ./bench_escalation --scenario=substitution --bench-dir=/tmp
//
// The supervisor runs every standard scenario at the cheap always-on
// baseline (n=65536 light, 5 tests) and must escalate the live testing
// block to the heavy design (n=65536 high, 9 tests) through the register
// map on each attack, confirm the captured evidence offline through the
// SP 800-22 battery, and stay at the baseline on the healthy null
// scenario.  A separate timing pass measures the supervision overhead on
// a healthy stream against the bare streaming pipeline.
//
// Results go to BENCH_escalation.json (schema "otf-escalation/1", see
// docs/BENCHMARKS.md).  Exit status enforces the contract:
//   - every attack scenario escalates in every trial, pre-onset never;
//   - every escalation is offline-confirmed;
//   - the null scenario never escalates (false-escalation budget 0);
//   - baseline throughput overhead vs un-supervised streaming <= 10%
//     (full runs only; smoke proves the plumbing).
#include "base/env.hpp"
#include "base/json.hpp"
#include "base/ring_buffer.hpp"
#include "core/design_config.hpp"
#include "core/scenario.hpp"
#include "core/stream.hpp"
#include "core/supervisor.hpp"
#include "trng/source_model.hpp"
#include "trng/sources.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

using namespace otf;

namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kSeed = 0x5eed0e5ca1a7e000ULL;

std::uint64_t trial_seed(unsigned trial, unsigned which)
{
    return kSeed + kGolden * (std::uint64_t{trial} * 2 + which + 1);
}

/// Aggregated escalation telemetry of one scenario over its trials.
struct scenario_result {
    std::string name;
    bool expect_escalation = true;
    unsigned trials = 0;
    unsigned trials_escalated = 0;
    unsigned trials_confirmed = 0; ///< first escalation offline-confirmed
    unsigned false_escalations = 0; ///< escalated at or before onset
    double mean_latency = 0.0;      ///< windows, onset -> escalation
    std::uint64_t worst_latency = 0;
    std::uint64_t de_escalations = 0;
    std::uint64_t windows_escalated = 0;
    unsigned battery_failed = 0; ///< failing P-values, first confirmation
    std::uint64_t bits = 0;
    double seconds = 0.0;

    bool contract_ok() const
    {
        if (!expect_escalation) {
            return trials_escalated == 0;
        }
        return trials_escalated == trials
            && trials_confirmed == trials_escalated
            && false_escalations == 0;
    }
};

double seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                         - t0)
        .count();
}

} // namespace

int main(int argc, char** argv)
{
    std::string scenario_filter;
    for (int i = 1; i < argc; ++i) {
        const char key[] = "--scenario=";
        if (std::strncmp(argv[i], key, sizeof key - 1) == 0) {
            scenario_filter = argv[i] + sizeof key - 1;
        } else if (!parse_bench_dir_flag(argv[i])) {
            std::fprintf(stderr,
                         "usage: %s [--scenario=<name>] "
                         "[--bench-dir=<dir>]\n",
                         argv[0]);
            return 2;
        }
    }

    core::supervisor_config sup_cfg;
    sup_cfg.baseline = core::paper_design(16, core::tier::light);
    sup_cfg.baseline.double_buffered = true;
    sup_cfg.escalated = core::paper_design(16, core::tier::high);
    sup_cfg.escalated.double_buffered = true;
    sup_cfg.alpha = 0.001;
    sup_cfg.fail_threshold = 3;
    sup_cfg.policy_window = 8;
    sup_cfg.evidence_windows = smoke_scaled<std::size_t>(8, 4);
    sup_cfg.dwell_windows = 12;
    sup_cfg.offline_alpha = 0.01;
    sup_cfg.offline_min_failures = 2;

    const std::uint64_t windows = smoke_scaled<std::uint64_t>(48, 20);
    const unsigned trials = smoke_scaled(3u, 1u);
    const std::uint64_t onset = smoke_scaled<std::uint64_t>(8, 4);
    const std::uint64_t ramp = smoke_scaled<std::uint64_t>(8, 4);
    const std::size_t nwords =
        static_cast<std::size_t>(sup_cfg.baseline.n() / 64);

    std::vector<core::scenario> scenarios =
        core::standard_scenarios(onset, ramp);
    if (!scenario_filter.empty()) {
        std::erase_if(scenarios, [&](const core::scenario& sc) {
            return sc.name != scenario_filter;
        });
        if (scenarios.empty()) {
            std::fprintf(stderr, "unknown scenario \"%s\"; available:\n",
                         scenario_filter.c_str());
            for (const core::scenario& sc : core::standard_scenarios()) {
                std::fprintf(stderr, "  %s\n", sc.name.c_str());
            }
            return 2;
        }
    }
    const bool filtered = !scenario_filter.empty();

    std::printf("escalation bench: baseline %s -> escalated %s\n",
                sup_cfg.baseline.name.c_str(),
                sup_cfg.escalated.name.c_str());
    std::printf("%llu windows x %u trial(s), alarm %u-of-%u at alpha "
                "%.4g, evidence %zu windows, dwell %llu, onset %llu\n\n",
                static_cast<unsigned long long>(windows), trials,
                sup_cfg.fail_threshold, sup_cfg.policy_window,
                sup_cfg.alpha, sup_cfg.evidence_windows,
                static_cast<unsigned long long>(sup_cfg.dwell_windows),
                static_cast<unsigned long long>(onset));

    // Critical values for both designs, inverted once for every
    // scenario and trial.
    const core::critical_values cv_baseline =
        core::compute_critical_values(sup_cfg.baseline, sup_cfg.alpha);
    const core::critical_values cv_escalated =
        core::compute_critical_values(sup_cfg.escalated, sup_cfg.alpha);

    std::vector<scenario_result> results;
    std::printf("%-14s %-10s %-10s %-9s %-12s %s\n", "scenario",
                "escalated", "confirmed", "latency", "de-escal.",
                "battery fails");
    for (const core::scenario& sc : scenarios) {
        const auto t0 = std::chrono::steady_clock::now();
        scenario_result res;
        res.name = sc.name;
        res.expect_escalation = sc.expect_alarm;
        res.trials = trials;

        std::uint64_t latency_sum = 0;
        unsigned latency_count = 0;
        for (unsigned t = 0; t < trials; ++t) {
            std::unique_ptr<trng::entropy_source> source =
                std::make_unique<trng::ideal_source>(trial_seed(t, 0));
            trng::source_model* model = nullptr;
            if (sc.make_model) {
                auto stacked =
                    sc.make_model(std::move(source), trial_seed(t, 1));
                model = stacked.get();
                source = std::move(stacked);
            }

            core::supervisor sup(sup_cfg, cv_baseline, cv_escalated);
            core::producer_options opts;
            opts.hook_stride_words = nwords;
            if (model) {
                const core::severity_schedule schedule = sc.schedule;
                opts.word_hook = [model, schedule,
                                  nwords](std::uint64_t word) {
                    model->set_severity(
                        schedule.severity_at(word / nwords));
                };
            }
            const core::supervision_report rep =
                sup.run(*source, windows, std::move(opts));

            res.bits += rep.bits;
            res.de_escalations += rep.de_escalations;
            res.windows_escalated += rep.windows_escalated;
            if (rep.escalations > 0) {
                ++res.trials_escalated;
                // Escalation fires at the barrier after the alarm
                // window; at or before onset means a pre-onset alarm.
                if (rep.first_escalation_window <= onset) {
                    ++res.false_escalations;
                } else {
                    const std::uint64_t latency =
                        rep.first_escalation_window - onset;
                    latency_sum += latency;
                    ++latency_count;
                    res.worst_latency =
                        std::max(res.worst_latency, latency);
                }
                // "Offline-confirmed" means *every* escalation of the
                // trial (a pulse can escalate, de-escalate and
                // re-escalate): one confirmed verdict per escalation.
                unsigned confirmed_events = 0;
                bool first_recorded = false;
                for (const core::supervision_event& ev : rep.events) {
                    if (ev.kind
                        != core::supervision_event_kind::confirmed) {
                        continue;
                    }
                    if (ev.confirmation->confirmed) {
                        ++confirmed_events;
                    }
                    if (t == 0 && !first_recorded) {
                        res.battery_failed =
                            ev.confirmation->battery.failed;
                        first_recorded = true;
                    }
                }
                if (confirmed_events == rep.escalations) {
                    ++res.trials_confirmed;
                }
            }
        }
        if (latency_count > 0) {
            res.mean_latency = static_cast<double>(latency_sum)
                / static_cast<double>(latency_count);
        }
        res.seconds = seconds_since(t0);
        results.push_back(res);

        std::string latency = "-";
        if (latency_count > 0) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.1f w", res.mean_latency);
            latency = buf;
        }
        std::printf("%-14s %u/%-8u %u/%-8u %-9s %-12llu %u\n",
                    res.name.c_str(), res.trials_escalated, res.trials,
                    res.trials_confirmed, res.trials_escalated,
                    latency.c_str(),
                    static_cast<unsigned long long>(res.de_escalations),
                    res.battery_failed);
    }

    // Supervision overhead on a healthy stream: the supervisor's
    // baseline loop (alarm policy + evidence capture + barrier checks)
    // against the bare producer -> pump pipeline at the same design.
    // Best-of-N on interleaved measurements so scheduler noise on a
    // loaded machine cannot flip the acceptance ratio (the bar is only
    // enforced on full runs; smoke proves the plumbing).
    const std::uint64_t overhead_windows =
        smoke_scaled<std::uint64_t>(48, 8);
    const unsigned reps = smoke_scaled(5u, 1u);
    double plain_mbps = 0.0;
    double supervised_mbps = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        {
            core::monitor mon(sup_cfg.baseline, cv_baseline);
            trng::ideal_source src(2026);
            const std::size_t ring_words =
                core::default_ring_words(nwords);
            base::ring_buffer ring(ring_words);
            core::producer_options opts;
            opts.total_words = overhead_windows * nwords;
            opts.batch_words =
                core::default_batch_words(nwords, ring_words);
            core::word_producer producer(src, ring, opts);
            core::window_pump pump(ring, mon);
            const auto t0 = std::chrono::steady_clock::now();
            core::run_pipeline(producer, pump, nullptr,
                               overhead_windows);
            const double s = seconds_since(t0);
            plain_mbps = std::max(
                plain_mbps,
                static_cast<double>(overhead_windows
                                    * sup_cfg.baseline.n())
                    / s / 1e6);
        }
        {
            core::supervisor sup(sup_cfg, cv_baseline, cv_escalated);
            trng::ideal_source src(2026);
            const auto t0 = std::chrono::steady_clock::now();
            sup.run(src, overhead_windows);
            const double s = seconds_since(t0);
            supervised_mbps = std::max(
                supervised_mbps,
                static_cast<double>(overhead_windows
                                    * sup_cfg.baseline.n())
                    / s / 1e6);
        }
    }
    const double overhead =
        plain_mbps > 0.0 ? plain_mbps / supervised_mbps - 1.0 : 0.0;
    const bool enforce_overhead = !smoke_mode();
    std::printf("\nbaseline throughput: %.1f Mbit/s plain, %.1f Mbit/s "
                "supervised -> %.1f%% overhead%s\n",
                plain_mbps, supervised_mbps, 100.0 * overhead,
                enforce_overhead ? "" : " (smoke: not enforced)");

    bool ok = true;
    std::printf("\nsummary:\n");
    for (const scenario_result& res : results) {
        ok = ok && res.contract_ok();
        std::printf("  %-14s %s\n", res.name.c_str(),
                    res.contract_ok()
                        ? (res.expect_escalation
                               ? "escalated + confirmed in every trial"
                               : "stayed at baseline")
                        : "CONTRACT FAILED");
    }
    const bool overhead_ok = !enforce_overhead || overhead <= 0.10;
    if (!overhead_ok) {
        std::printf("  overhead       CONTRACT FAILED (%.1f%% > 10%%)\n",
                    100.0 * overhead);
    }
    ok = ok && overhead_ok;

    json_writer json;
    json.begin_object();
    json.value("schema", "otf-escalation/1");
    json.value("smoke", smoke_mode());
    json.value("filtered", filtered);
    json.value("baseline", sup_cfg.baseline.name);
    json.value("escalated", sup_cfg.escalated.name);
    json.value("alpha", sup_cfg.alpha);
    json.value("fail_threshold", sup_cfg.fail_threshold);
    json.value("policy_window", sup_cfg.policy_window);
    json.value("evidence_windows",
               static_cast<std::uint64_t>(sup_cfg.evidence_windows));
    json.value("dwell_windows", sup_cfg.dwell_windows);
    json.value("offline_alpha", sup_cfg.offline_alpha);
    json.value("windows", windows);
    json.value("trials", trials);
    json.value("onset_window", onset);
    json.value("seed", kSeed);
    json.begin_array("results");
    for (const scenario_result& res : results) {
        json.begin_object();
        json.value("scenario", res.name);
        json.value("expect_escalation", res.expect_escalation);
        json.value("trials", res.trials);
        json.value("trials_escalated", res.trials_escalated);
        json.value("trials_confirmed", res.trials_confirmed);
        json.value("false_escalations", res.false_escalations);
        json.value("mean_escalation_latency_windows", res.mean_latency);
        json.value("worst_escalation_latency_windows",
                   res.worst_latency);
        json.value("de_escalations", res.de_escalations);
        json.value("windows_escalated", res.windows_escalated);
        json.value("battery_failed", res.battery_failed);
        json.value("bits", res.bits);
        json.value("seconds", res.seconds);
        json.value("contract_ok", res.contract_ok());
        json.end_object();
    }
    json.end_array();
    json.begin_object("overhead");
    json.value("windows", overhead_windows);
    json.value("plain_mbps", plain_mbps);
    json.value("supervised_mbps", supervised_mbps);
    json.value("overhead_fraction", overhead);
    json.value("enforced", enforce_overhead);
    json.end_object();
    json.value("contract_ok", ok);
    json.end_object();

    const std::string path = bench_output_path("BENCH_escalation.json");
    std::ofstream out(path);
    out << json.str();
    out.flush();
    if (!out) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", path.c_str());

    if (!ok) {
        std::printf("CONTRACT FAILED: an attack went un-escalated or "
                    "unconfirmed, the null scenario escalated, or the "
                    "supervision overhead exceeded 10%%\n");
        return 1;
    }
    return 0;
}
