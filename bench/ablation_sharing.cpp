// Ablation of the paper's four area-sharing tricks (Section III-C).
//
// For each trick the harness reports the area the 65536-bit high design
// would pay without it, using the same RTL component models:
//   1. omitting the redundant ones-counter (N_ones from the cusum walk),
//   2. power-of-two block lengths (block boundaries decoded from the
//      global bit counter instead of per-engine position counters),
//   3. the approximate-entropy test reusing the serial counter files,
//   4. one shared shift register for both template tests.
// A fifth row quantifies the interface observation the paper makes in
// Section III-C: the readout mux is a significant area contributor, and
// transferring the 3- and 2-bit serial counts (derivable as marginals in
// software) costs measurable area.
#include "core/design_config.hpp"
#include "hw/testing_block.hpp"
#include "rtl/counter.hpp"
#include "rtl/mux.hpp"
#include "rtl/shift_register.hpp"

#include <cstdio>

using namespace otf;

namespace {

void report(const char* what, const rtl::resources& extra,
            const rtl::resources& base)
{
    const auto with = rtl::estimate_spartan6(base);
    const auto without = rtl::estimate_spartan6(base + extra);
    std::printf("%-52s +%4u FF +%4u LUT  -> %u slices (+%u, +%.1f%%)\n",
                what, extra.ffs, extra.luts, without.slices,
                without.slices - with.slices,
                100.0 * (without.slices - with.slices) / with.slices);
}

} // namespace

int main()
{
    const auto cfg = core::paper_design(16, core::tier::high);
    const hw::testing_block block(cfg);
    const rtl::resources base = block.cost();
    const auto fpga = rtl::estimate_spartan6(base);

    std::printf("Sharing-trick ablation on %s (baseline: %u slices, "
                "%u FF, %u LUT)\n\n",
                cfg.name.c_str(), fpga.slices, fpga.ffs, fpga.luts);

    // Trick 1: a dedicated ones counter for tests 1 and 3.
    {
        const rtl::counter ones("ones", cfg.log2_n + 1);
        report("without trick 1 (dedicated N_ones counter)", ones.cost(),
               base);
    }

    // Trick 2: per-engine position counters.  Four block-structured tests
    // (2, 4, 7, 8) would each carry a block-position counter of their
    // block's width plus a block-index counter.
    {
        rtl::resources extra;
        for (const unsigned log2_m :
             {cfg.bf_log2_m, cfg.lr_log2_m, cfg.t7_log2_m, cfg.t8_log2_m}) {
            const rtl::counter pos("pos", log2_m);
            const rtl::counter idx("idx", cfg.log2_n - log2_m);
            extra += pos.cost();
            extra += idx.cost();
        }
        report("without trick 2 (per-engine block counters)", extra, base);
    }

    // Trick 3: a private copy of the 4-bit and 3-bit counter files for the
    // approximate-entropy test.
    {
        rtl::resources extra;
        for (unsigned i = 0; i < (1u << cfg.serial_m); ++i) {
            extra += rtl::counter("nu4", cfg.log2_n + 1).cost();
        }
        for (unsigned i = 0; i < (1u << (cfg.serial_m - 1)); ++i) {
            extra += rtl::counter("nu3", cfg.log2_n + 1).cost();
        }
        extra += rtl::shift_register("window", cfg.serial_m).cost();
        report("without trick 3 (private ApEn pattern counters)", extra,
               base);
    }

    // Trick 4: a second 9-bit shift register for the second template test.
    {
        const rtl::shift_register window("window9", cfg.template_length);
        report("without trick 4 (second template shift register)",
               window.cost(), base);
    }

    std::printf("\ninterface cost (Section III-C: the mux \"contributes "
                "significantly\"):\n");
    {
        const rtl::readout_mux mux("mux", block.registers().top_level_inputs(),
                                   block.registers().max_width());
        const auto mux_cost = mux.cost();
        std::printf("  readout mux: %u LUTs = %.1f%% of the design's "
                    "LUTs\n",
                    mux_cost.luts, 100.0 * mux_cost.luts / fpga.luts);
        std::printf("  register map: %zu values, %u bus words per "
                    "collection pass\n",
                    block.registers().size(),
                    block.registers().total_words());
        // Marginal-transfer option: software can derive the 3- and 2-bit
        // serial counts from the 4-bit file (cyclic marginals), dropping
        // 12 values from the map.
        unsigned marginal_words = 0;
        for (const auto& e : block.registers().entries()) {
            if (e.name.rfind("serial.nu_m1", 0) == 0
                || e.name.rfind("serial.nu_m2", 0) == 0) {
                marginal_words += (e.width + 15) / 16;
            }
        }
        std::printf("  marginal-transfer option would drop %u of %u bus "
                    "words (software derives nu_3, nu_2 as marginals of "
                    "nu_4 at 24 extra ADDs)\n",
                    marginal_words, block.registers().total_words());
    }
    return 0;
}
