// Stream throughput bench: the decoupled producer → ring → pump pipeline
// against the fused generate-then-test loop it replaced.
//
//   $ ./bench_stream_throughput            # full run (enforces the bar)
//   $ OTF_SMOKE=1 ./bench_stream_throughput  # ctest / verify.sh smoke entry
//
// Four measurements on the n = 65536 high-tier design (all nine tests,
// double-buffered):
//
//   1. fused loop      -- the pre-pipeline shape: one thread alternating
//      fill_words and the word-lane window test (the old fleet channel
//      body), the baseline the pipeline must not regress;
//   2. span kernels    -- the same fused loop on the bulk-span lane
//      (testing_block::feed_span), swept over the base/bits.hpp kernel
//      variants (reference / portable / simd); the acceptance bar is
//      >= 2x the word lane for the dispatched (simd-or-portable) variant
//      on full runs;
//   3. streamed channel -- core::word_producer on its own thread, a
//      two-window base::ring_buffer, core::window_pump on the caller;
//      the acceptance bar is >= 0.9x the fused loop (full runs exit
//      nonzero below it; generation overlaps analysis, so at one channel
//      the pipeline should roughly break even and win as generation
//      cost grows);
//   4. streamed fleet  -- core::fleet_monitor (now pipeline-backed) over
//      1..C channels, reporting aggregate Mbit/s plus the per-channel
//      ring backpressure stats that tell which stage bounds throughput;
//   5. batch sweep     -- the streamed channel at generation batches from
//      a quarter window to two windows (a four-window ring), showing
//      where batching stops paying;
//   6. generation lane -- every adversarial source model at severity 1.0
//      over an ideal inner, per-word lane (fill_words_scalar) against
//      the batched lane (fill_words); the acceptance bar is >= 3x
//      batched-over-scalar for every model on full runs.  The two lanes
//      are bit-exact (tests/test_generation_oracle.cpp); this times the
//      producer side the zero-copy ring path exposes.
//
// Equivalence is proven separately (tests/test_stream.cpp,
// tests/test_kernel_oracle.cpp and tests/test_generation_oracle.cpp);
// this is timing only.  Results go to BENCH_stream.json (schema
// "otf-stream-bench/3", docs/BENCHMARKS.md; OTF_BENCH_DIR overrides the
// output directory).
#include "base/bits.hpp"
#include "base/env.hpp"
#include "base/json.hpp"
#include "base/ring_buffer.hpp"
#include "core/design_config.hpp"
#include "core/fleet_monitor.hpp"
#include "core/monitor.hpp"
#include "core/stream.hpp"
#include "trng/source_model.hpp"
#include "trng/sources.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace otf;

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0)
{
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}

double mwords_per_s(std::uint64_t words, double seconds)
{
    return static_cast<double>(words) / seconds / 1e6;
}

} // namespace

int main(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (!parse_bench_dir_flag(argv[i])) {
            std::fprintf(stderr, "usage: %s [--bench-dir=<dir>]\n",
                         argv[0]);
            return 2;
        }
    }

    hw::block_config design = core::paper_design(16, core::tier::high);
    design.double_buffered = true;

    const std::uint64_t windows = smoke_scaled<std::uint64_t>(48, 2);
    const std::size_t nwords = static_cast<std::size_t>(design.n() / 64);
    const std::uint64_t total_words = windows * nwords;

    std::printf("design: %s (double-buffered), %zu words/window, "
                "%llu windows\n",
                design.name.c_str(), nwords,
                static_cast<unsigned long long>(windows));
    std::printf("hardware_concurrency: %u\n\n",
                std::thread::hardware_concurrency());

    // Best-of-N timing: both single-channel measurements repeat and keep
    // the fastest pass, so scheduler noise on a loaded machine cannot
    // flip the acceptance ratio (full runs only; smoke proves the
    // plumbing).
    const unsigned reps = smoke_scaled(3u, 1u);

    // 1. Fused loop: the pre-pipeline fleet channel body -- generate a
    // window, test it, repeat, all on one thread.
    double fused_mwps = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        core::monitor mon(design, 0.01);
        trng::ideal_source src(2025);
        std::vector<std::uint64_t> buffer(nwords);
        const auto t0 = clock_type::now();
        for (std::uint64_t w = 0; w < windows; ++w) {
            src.fill_words(buffer.data(), nwords);
            mon.test_packed(buffer.data(), nwords);
        }
        const double s = seconds_since(t0);
        fused_mwps = std::max(fused_mwps, mwords_per_s(total_words, s));
    }
    std::printf("fused loop      : %8.2f Mwords/s\n", fused_mwps);

    // 2. Span kernels: the same fused loop on the bulk-span lane, once
    // per kernel variant.  The variant the runtime dispatch would pick on
    // its own (simd when compiled in, portable otherwise) carries the
    // acceptance bar.
    struct kernel_point {
        const char* variant;
        bool dispatched; // the variant runtime dispatch picks by default
        double mwps;
    };
    const bits::kernel_variant best = bits::simd_compiled()
        ? bits::kernel_variant::simd
        : bits::kernel_variant::portable;
    const std::pair<const char*, bits::kernel_variant> variants[] = {
        {"reference", bits::kernel_variant::reference},
        {"portable", bits::kernel_variant::portable},
        {"simd", bits::kernel_variant::simd},
    };
    std::vector<kernel_point> kernels;
    double span_mwps = 0.0;
    for (const auto& [vname, variant] : variants) {
        bits::set_kernel_variant(variant);
        double mwps = 0.0;
        for (unsigned r = 0; r < reps; ++r) {
            core::monitor mon(design, 0.01);
            trng::ideal_source src(2025);
            std::vector<std::uint64_t> buffer(nwords);
            const auto t0 = clock_type::now();
            for (std::uint64_t w = 0; w < windows; ++w) {
                src.fill_words(buffer.data(), nwords);
                mon.test_packed(buffer.data(), nwords,
                                core::ingest_lane::span);
            }
            const double s = seconds_since(t0);
            mwps = std::max(mwps, mwords_per_s(total_words, s));
        }
        const bool dispatched = variant == best;
        if (dispatched) {
            span_mwps = mwps;
        }
        kernels.push_back({vname, dispatched, mwps});
        std::printf("span lane (%-9s): %8.2f Mwords/s   (%.2fx word "
                    "lane%s)\n",
                    vname, mwps, mwps / fused_mwps,
                    dispatched ? ", dispatched" : "");
    }
    bits::set_kernel_variant(bits::kernel_variant::simd);
    const double span_over_word = span_mwps / fused_mwps;

    // 3. Streamed channel: producer thread -> ring -> pump, both hops
    // zero-copy (generation writes ring storage, the pump feeds ring
    // spans straight into the testing block).
    double streamed_mwps = 0.0;
    core::stream_stats channel_stats;
    std::uint64_t zero_copy_windows = 0;
    for (unsigned r = 0; r < reps; ++r) {
        core::monitor mon(design, 0.01);
        trng::ideal_source src(2025);
        const std::size_t ring_words = core::default_ring_words(nwords);
        base::ring_buffer ring(ring_words);
        core::producer_options opts;
        opts.total_words = total_words;
        opts.batch_words = core::default_batch_words(nwords, ring_words);
        core::word_producer producer(src, ring, opts);
        core::window_pump pump(ring, mon);
        const auto t0 = clock_type::now();
        core::run_pipeline(producer, pump, nullptr, windows);
        const double s = seconds_since(t0);
        const double mwps = mwords_per_s(total_words, s);
        if (mwps > streamed_mwps) {
            streamed_mwps = mwps;
            channel_stats = core::snapshot(ring);
            zero_copy_windows = pump.zero_copy_windows();
        }
    }
    std::printf("streamed channel: %8.2f Mwords/s   (%.2fx fused; "
                "ring high-water %zu/%zu words, stalls p=%llu c=%llu)\n",
                streamed_mwps, streamed_mwps / fused_mwps,
                channel_stats.max_occupancy, channel_stats.ring_capacity,
                static_cast<unsigned long long>(
                    channel_stats.producer_stalls),
                static_cast<unsigned long long>(
                    channel_stats.consumer_stalls));
    const double ratio = streamed_mwps / fused_mwps;

    // 4. Streamed fleet scaling.
    const unsigned max_channels = smoke_scaled(8u, 2u);
    std::printf("\n%-10s %12s %12s %16s\n", "channels", "Mbit/s",
                "scaling", "max stalls p/c");
    struct scaling_point {
        unsigned channels;
        double mbps;
        double scaling;
        std::uint64_t worst_producer_stalls;
        std::uint64_t worst_consumer_stalls;
    };
    std::vector<scaling_point> scaling;
    double one_channel_mbps = 0.0;
    for (unsigned channels = 1; channels <= max_channels; channels *= 2) {
        core::fleet_config cfg;
        cfg.block = design;
        cfg.channels = channels;
        cfg.threads = 0;
        cfg.lane = core::ingest_lane::span;
        core::fleet_monitor fleet(cfg);
        const auto report = fleet.run(
            [](unsigned c) {
                return std::make_unique<trng::ideal_source>(1000 + c);
            },
            windows);
        const double mbps = report.bits_per_second() / 1e6;
        if (channels == 1) {
            one_channel_mbps = mbps;
        }
        scaling_point p{channels, mbps, mbps / one_channel_mbps, 0, 0};
        for (const core::channel_report& ch : report.channels) {
            if (ch.stream.producer_stalls > p.worst_producer_stalls) {
                p.worst_producer_stalls = ch.stream.producer_stalls;
            }
            if (ch.stream.consumer_stalls > p.worst_consumer_stalls) {
                p.worst_consumer_stalls = ch.stream.consumer_stalls;
            }
        }
        std::printf("%-10u %12.1f %11.2fx %8llu/%llu\n", channels, mbps,
                    p.scaling,
                    static_cast<unsigned long long>(
                        p.worst_producer_stalls),
                    static_cast<unsigned long long>(
                        p.worst_consumer_stalls));
        scaling.push_back(p);
    }

    // 5. Batch sweep: the streamed channel on a four-window ring at
    // generation batches from a quarter window up to two windows -- the
    // batched lane's cost per word falls with batch size, so this shows
    // where lifting the old one-window cap pays.
    struct sweep_point {
        std::size_t batch_words;
        std::size_t ring_words;
        double mwps;
    };
    std::vector<sweep_point> sweep;
    const std::size_t sweep_ring = 4 * nwords;
    std::printf("\nbatch sweep (ring %zu words):\n", sweep_ring);
    for (const std::size_t batch :
         {nwords / 4, nwords / 2, nwords, 2 * nwords}) {
        double mwps = 0.0;
        for (unsigned r = 0; r < reps; ++r) {
            core::monitor mon(design, 0.01);
            trng::ideal_source src(2025);
            base::ring_buffer ring(sweep_ring);
            core::producer_options opts;
            opts.total_words = total_words;
            opts.batch_words = batch;
            core::word_producer producer(src, ring, opts);
            core::window_pump pump(ring, mon);
            const auto t0 = clock_type::now();
            core::run_pipeline(producer, pump, nullptr, windows);
            mwps = std::max(
                mwps, mwords_per_s(total_words, seconds_since(t0)));
        }
        std::printf("  batch %6zu words: %8.2f Mwords/s\n", batch, mwps);
        sweep.push_back({batch, sweep_ring, mwps});
    }

    // 6. Generation lane: every adversarial source model at full
    // severity over an ideal inner, per-word lane against the batched
    // lane.  Bit-exactness of the two lanes is the oracle test's job
    // (tests/test_generation_oracle.cpp); this times them.
    struct generation_point {
        const char* model;
        double scalar_mwps;
        double batched_mwps;
    };
    const std::uint64_t gen_words = smoke_scaled<std::uint64_t>(
        std::uint64_t{1} << 21, std::uint64_t{1} << 14);
    const std::size_t gen_batch = 4096;
    const auto inner = [] {
        return std::make_unique<trng::ideal_source>(7);
    };
    struct gen_model {
        const char* name;
        std::function<std::unique_ptr<trng::source_model>()> make;
    };
    // rtn and bias_drift are parameterized to exercise their batched
    // algorithms rather than the shared per-word RNG draw chains, which
    // bit-exactness forbids shortening: long dwells give the run-length
    // expansion whole spans per toggle (default 256-bit dwells spend most
    // of the time re-drawing dwell lengths in both lanes), and a pinned
    // half-rail walk holds the drift at q = 128 where the mask fold is
    // the single-draw steady state (the default walk oscillates through
    // odd q values costing 8 shared draws per word in both lanes).
    const gen_model gen_models[] = {
        {"rtn",
         [&] {
             trng::rtn_parameters p;
             p.dwell_on = 8192.0;
             return std::make_unique<trng::rtn_source>(inner(), 11, p);
         }},
        {"bias_drift",
         [&] {
             trng::bias_drift_parameters p;
             p.p_out = 1.0;
             p.p_back = 0.0;
             p.max_shift_q = 128;
             return std::make_unique<trng::bias_drift_source>(inner(), 12,
                                                              p);
         }},
        {"lockin",
         [&] {
             return std::make_unique<trng::lockin_source>(inner(), 13);
         }},
        {"fault",
         [&] {
             return std::make_unique<trng::fault_source>(inner(), 14);
         }},
        {"entropy_collapse",
         [&] {
             return std::make_unique<trng::entropy_collapse_source>(
                 inner(), 15);
         }},
        {"substitution",
         [&] {
             return std::make_unique<trng::substitution_source>(inner(),
                                                                16);
         }},
    };
    const auto time_generation = [&](trng::source_model& model,
                                     bool batched) {
        std::vector<std::uint64_t> buf(gen_batch);
        double best = 0.0;
        for (unsigned r = 0; r < reps; ++r) {
            const auto t0 = clock_type::now();
            for (std::uint64_t made = 0; made < gen_words;
                 made += gen_batch) {
                if (batched) {
                    model.fill_words(buf.data(), gen_batch);
                } else {
                    model.fill_words_scalar(buf.data(), gen_batch);
                }
            }
            best = std::max(best,
                            mwords_per_s(gen_words, seconds_since(t0)));
        }
        return best;
    };
    std::vector<generation_point> generation;
    double generation_min_speedup = 0.0;
    std::printf("\ngeneration lane (severity 1.0, batch %zu words, "
                "%llu words/model):\n",
                gen_batch, static_cast<unsigned long long>(gen_words));
    for (const gen_model& gm : gen_models) {
        generation_point p{gm.name, 0.0, 0.0};
        {
            const auto model = gm.make();
            p.scalar_mwps = time_generation(*model, false);
        }
        {
            const auto model = gm.make();
            p.batched_mwps = time_generation(*model, true);
        }
        const double speedup = p.batched_mwps / p.scalar_mwps;
        if (generation.empty() || speedup < generation_min_speedup) {
            generation_min_speedup = speedup;
        }
        generation.push_back(p);
        std::printf("  %-18s scalar %8.2f  batched %8.2f Mwords/s "
                    "(%.2fx)\n",
                    gm.name, p.scalar_mwps, p.batched_mwps, speedup);
    }

    json_writer json;
    json.begin_object();
    json.value("schema", "otf-stream-bench/3");
    json.value("smoke", smoke_mode());
    json.value("design", design.name);
    json.value("window_bits", design.n());
    json.value("words_per_window", static_cast<std::uint64_t>(nwords));
    json.value("windows", windows);
    json.value("hardware_concurrency",
               std::thread::hardware_concurrency());
    json.value("simd_compiled", bits::simd_compiled());
    json.value("fused_mwords_per_s", fused_mwps);
    json.begin_array("span_kernels");
    for (const kernel_point& k : kernels) {
        json.begin_object();
        json.value("variant", k.variant);
        json.value("dispatched", k.dispatched);
        json.value("mwords_per_s", k.mwps);
        json.value("over_word_lane", k.mwps / fused_mwps);
        json.end_object();
    }
    json.end_array();
    json.value("span_over_word", span_over_word);
    json.value("streamed_mwords_per_s", streamed_mwps);
    json.value("streamed_over_fused", ratio);
    json.value("zero_copy_windows", zero_copy_windows);
    json.begin_object("channel_ring");
    json.value("capacity_words",
               static_cast<std::uint64_t>(channel_stats.ring_capacity));
    json.value("max_occupancy_words",
               static_cast<std::uint64_t>(channel_stats.max_occupancy));
    json.value("producer_stalls", channel_stats.producer_stalls);
    json.value("consumer_stalls", channel_stats.consumer_stalls);
    json.end_object();
    json.begin_array("fleet");
    for (const scaling_point& p : scaling) {
        json.begin_object();
        json.value("channels", p.channels);
        json.value("mbps", p.mbps);
        json.value("scaling", p.scaling);
        json.value("worst_producer_stalls", p.worst_producer_stalls);
        json.value("worst_consumer_stalls", p.worst_consumer_stalls);
        json.end_object();
    }
    json.end_array();
    json.begin_array("batch_sweep");
    for (const sweep_point& p : sweep) {
        json.begin_object();
        json.value("batch_words",
                   static_cast<std::uint64_t>(p.batch_words));
        json.value("ring_words", static_cast<std::uint64_t>(p.ring_words));
        json.value("mwords_per_s", p.mwps);
        json.end_object();
    }
    json.end_array();
    json.begin_array("generation");
    for (const generation_point& p : generation) {
        json.begin_object();
        json.value("model", p.model);
        json.value("scalar_mwords_per_s", p.scalar_mwps);
        json.value("batched_mwords_per_s", p.batched_mwps);
        json.value("speedup", p.batched_mwps / p.scalar_mwps);
        json.end_object();
    }
    json.end_array();
    json.value("generation_min_speedup", generation_min_speedup);
    json.end_object();

    const std::string path = bench_output_path("BENCH_stream.json");
    std::ofstream out(path);
    out << json.str();
    out.flush();
    if (!out) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", path.c_str());

    // Acceptance bars.  The timing bars run on full runs only (smoke
    // runs are too short to time reliably): the decoupled pipeline must
    // stay within 10% of the fused loop, the dispatched span kernels
    // must at least double the word lane, and the batched generation
    // lane must at least triple the per-word lane for every model.  The
    // zero-copy check is deterministic (an untapped pump takes the
    // zero-copy path for every window), so it holds in smoke mode too.
    bool failed = false;
    if (zero_copy_windows != windows) {
        std::printf("BAR FAILED: zero_copy_windows = %llu, expected "
                    "%llu (untapped pump must take the zero-copy path "
                    "for every window)\n",
                    static_cast<unsigned long long>(zero_copy_windows),
                    static_cast<unsigned long long>(windows));
        failed = true;
    }
    if (!smoke_mode() && ratio < 0.9) {
        std::printf("BAR FAILED: streamed/fused = %.3f < 0.9\n", ratio);
        failed = true;
    }
    if (!smoke_mode() && span_over_word < 2.0) {
        std::printf("BAR FAILED: span/word = %.3f < 2.0\n",
                    span_over_word);
        failed = true;
    }
    if (!smoke_mode() && generation_min_speedup < 3.0) {
        std::printf("BAR FAILED: generation batched/scalar = %.3f < 3.0 "
                    "(worst model)\n",
                    generation_min_speedup);
        failed = true;
    }
    if (failed) {
        return 1;
    }
    std::printf("streamed/fused = %.3f (bar: >= 0.9%s)\n", ratio,
                smoke_mode() ? ", not enforced in smoke mode" : "");
    std::printf("span/word      = %.3f (bar: >= 2.0%s)\n", span_over_word,
                smoke_mode() ? ", not enforced in smoke mode" : "");
    std::printf("generation     = %.3fx batched/scalar, worst model "
                "(bar: >= 3.0%s)\n",
                generation_min_speedup,
                smoke_mode() ? ", not enforced in smoke mode" : "");
    return 0;
}
