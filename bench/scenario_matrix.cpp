// Scenario matrix: the adversarial scenario library against every paper
// design point, with machine-readable detection telemetry.
//
//   $ ./bench_scenario_matrix              # full run (64 windows x 3 trials)
//   $ OTF_SMOKE=1 ./bench_scenario_matrix  # ctest / verify.sh smoke entry
//   $ ./bench_scenario_matrix --scenario=bias-drift --design="n=128 light"
//                                          # reproduce a single cell
//
// --scenario=<name> and --design=<name> restrict the sweep so one failing
// cell can be re-run without the full matrix; an unknown name prints the
// available ones and exits nonzero.  The cross-design union-detection
// contract is only enforced on the full (unfiltered) matrix -- a single
// design may legitimately miss an attack -- but the null scenario must
// stay silent in any subset.
//
// For each of the eight Table III designs the runner executes every
// standard scenario (six source models + the healthy null) and reports
// detection latency, false alarms and failure attribution.  Results are
// written to BENCH_scenarios.json (schema "otf-scenario-matrix/1", see
// docs/BENCHMARKS.md; OTF_BENCH_DIR overrides the output directory) so CI
// can archive them and future PRs can diff detection power numerically.
//
// Exit status enforces the library's contract: every attack scenario must
// be detected by at least one design, and the null scenario must never
// alarm.
#include "base/env.hpp"
#include "base/json.hpp"
#include "core/design_config.hpp"
#include "core/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace otf;

namespace {

/// Value of `--<key>=` when `arg` matches, nullptr otherwise.
const char* option_value(const char* arg, const char* key)
{
    const std::size_t len = std::strlen(key);
    if (std::strncmp(arg, key, len) == 0 && arg[len] == '=') {
        return arg + len + 1;
    }
    return nullptr;
}

} // namespace

int main(int argc, char** argv)
{
    core::scenario_config cfg;
    cfg.alpha = 0.001;
    cfg.fail_threshold = 3;
    cfg.policy_window = 8;
    cfg.windows = smoke_scaled<std::uint64_t>(64, 12);
    cfg.trials = smoke_scaled(3u, 1u);

    const std::uint64_t onset = smoke_scaled<std::uint64_t>(8, 2);
    const std::uint64_t ramp = smoke_scaled<std::uint64_t>(8, 2);
    std::vector<core::scenario> scenarios =
        core::standard_scenarios(onset, ramp);
    std::vector<hw::block_config> designs = core::all_paper_designs();

    // --scenario=<name> / --design=<name> reproduce one failing cell
    // without the full sweep.
    std::string scenario_filter;
    std::string design_filter;
    for (int i = 1; i < argc; ++i) {
        if (const char* v = option_value(argv[i], "--scenario")) {
            scenario_filter = v;
        } else if (const char* v = option_value(argv[i], "--design")) {
            design_filter = v;
        } else if (parse_bench_dir_flag(argv[i])) {
            // output-directory override, recorded by the helper
        } else {
            std::fprintf(stderr,
                         "usage: %s [--scenario=<name>] [--design=<name>] "
                         "[--bench-dir=<dir>]\n",
                         argv[0]);
            return 2;
        }
    }
    if (!scenario_filter.empty()) {
        std::erase_if(scenarios, [&](const core::scenario& sc) {
            return sc.name != scenario_filter;
        });
        if (scenarios.empty()) {
            std::fprintf(stderr, "unknown scenario \"%s\"; available:\n",
                         scenario_filter.c_str());
            for (const core::scenario& sc : core::standard_scenarios()) {
                std::fprintf(stderr, "  %s\n", sc.name.c_str());
            }
            return 2;
        }
    }
    if (!design_filter.empty()) {
        std::erase_if(designs, [&](const hw::block_config& d) {
            return d.name != design_filter;
        });
        if (designs.empty()) {
            std::fprintf(stderr, "unknown design \"%s\"; available:\n",
                         design_filter.c_str());
            for (const hw::block_config& d : core::all_paper_designs()) {
                std::fprintf(stderr, "  %s\n", d.name.c_str());
            }
            return 2;
        }
    }
    const bool filtered =
        !scenario_filter.empty() || !design_filter.empty();

    std::printf("scenario matrix: %zu scenarios x %zu designs, "
                "%llu windows x %u trial(s), alpha = %.4g, "
                "alarm = %u-of-%u, onset window %llu\n\n",
                scenarios.size(), designs.size(),
                static_cast<unsigned long long>(cfg.windows), cfg.trials,
                cfg.alpha, cfg.fail_threshold, cfg.policy_window,
                static_cast<unsigned long long>(onset));

    std::vector<core::scenario_report> all;
    for (const hw::block_config& design : designs) {
        const core::scenario_runner runner(design, cfg);
        std::printf("%s\n", design.name.c_str());
        std::printf("  %-14s %-9s %-10s %-12s %s\n", "scenario",
                    "alarmed", "latency", "false-rate", "top failing tests");
        for (const core::scenario& sc : scenarios) {
            const core::scenario_report rep = runner.run(sc);
            all.push_back(rep);

            std::string latency = "-";
            if (rep.detected()) {
                char buf[32];
                std::snprintf(buf, sizeof buf, "%.1f w",
                              rep.mean_detection_latency);
                latency = buf;
            }
            std::string tests;
            unsigned listed = 0;
            for (const auto& [name, count] : rep.failures_by_test) {
                if (listed++ == 3) {
                    tests += ", ...";
                    break;
                }
                tests += (tests.empty() ? "" : ", ") + name + " x"
                    + std::to_string(count);
            }
            std::printf("  %-14s %u/%-7u %-10s %-12.4f %s\n",
                        rep.scenario_name.c_str(), rep.trials_alarmed,
                        rep.trials, latency.c_str(),
                        rep.false_alarm_rate(), tests.c_str());
        }
        std::printf("\n");
    }

    // Library contract: union detection across designs per scenario.
    std::map<std::string, std::set<std::string>> detected_by;
    std::map<std::string, bool> expect_alarm;
    bool null_alarmed = false;
    for (const core::scenario_report& rep : all) {
        expect_alarm[rep.scenario_name] = rep.expect_alarm;
        if (rep.detected()) {
            detected_by[rep.scenario_name].insert(rep.design);
        }
        if (!rep.expect_alarm && rep.trials_alarmed > 0) {
            null_alarmed = true;
        }
    }
    bool ok = !null_alarmed;
    std::printf("summary:\n");
    for (const core::scenario& sc : scenarios) {
        if (!sc.expect_alarm) {
            std::printf("  %-14s %s\n", sc.name.c_str(),
                        null_alarmed ? "ALARMED (unexpected)"
                                     : "silent on every design");
            continue;
        }
        const auto& designs_hit = detected_by[sc.name];
        // Union detection is a property of the full matrix; a filtered
        // subset only reports it.
        ok = ok && (filtered || !designs_hit.empty());
        std::printf("  %-14s detected by %zu/%zu designs\n",
                    sc.name.c_str(), designs_hit.size(), designs.size());
    }

    json_writer json;
    json.begin_object();
    json.value("schema", "otf-scenario-matrix/1");
    json.value("smoke", smoke_mode());
    json.value("filtered", filtered);
    json.value("alpha", cfg.alpha);
    json.value("windows_per_trial", cfg.windows);
    json.value("trials", cfg.trials);
    json.value("fail_threshold", cfg.fail_threshold);
    json.value("policy_window", cfg.policy_window);
    json.value("onset_window", onset);
    json.value("seed", cfg.seed);
    json.begin_array("results");
    for (const core::scenario_report& rep : all) {
        json.begin_object();
        json.value("scenario", rep.scenario_name);
        json.value("design", rep.design);
        json.value("source", rep.source);
        json.value("expect_alarm", rep.expect_alarm);
        json.value("trials", rep.trials);
        json.value("trials_alarmed", rep.trials_alarmed);
        json.value("trials_false_alarmed", rep.trials_false_alarmed);
        json.value("detected", rep.detected());
        json.value("expectation_met", rep.expectation_met());
        json.value("mean_detection_latency_windows",
                   rep.mean_detection_latency);
        json.value("worst_detection_latency_windows",
                   rep.worst_detection_latency);
        json.value("pre_onset_windows", rep.pre_onset_windows);
        json.value("pre_onset_failures", rep.pre_onset_failures);
        json.value("false_alarm_rate", rep.false_alarm_rate());
        json.value("post_onset_windows", rep.post_onset_windows);
        json.value("post_onset_failures", rep.post_onset_failures);
        json.value("bits", rep.bits);
        json.value("seconds", rep.seconds);
        json.value("bits_per_second", rep.bits_per_second());
        json.begin_object("failures_by_test");
        for (const auto& [name, count] : rep.failures_by_test) {
            json.value(name, count);
        }
        json.end_object();
        json.end_object();
    }
    json.end_array();
    json.begin_array("summary");
    for (const core::scenario& sc : scenarios) {
        json.begin_object();
        json.value("scenario", sc.name);
        json.value("expect_alarm", sc.expect_alarm);
        json.begin_array("detected_by");
        for (const std::string& d : detected_by[sc.name]) {
            json.value({}, d);
        }
        json.end_array();
        json.end_object();
    }
    json.end_array();
    json.value("contract_ok", ok);
    json.end_object();

    const std::string path = bench_output_path("BENCH_scenarios.json");
    std::ofstream out(path);
    out << json.str();
    out.flush();
    if (!out) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", path.c_str());

    if (!ok) {
        std::printf("CONTRACT FAILED: an attack scenario went undetected "
                    "on every design, or the null scenario alarmed\n");
        return 1;
    }
    return 0;
}
