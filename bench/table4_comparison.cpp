// Reproduction of Table IV: comparison against the per-test full-hardware
// implementations of Veljkovic et al. ([13], DATE 2012).
//
// The baseline completes every test in its own hardware: private bit
// counter, private statistics counters, decision arithmetic (squarer +
// accumulator + hard-wired comparators) and a single alarm wire.  The
// paper compares the summed area of six such tests against the unified
// 65536-bit design, and the baseline's decision latency (21 cycles)
// against the software routine on an openMSP430 (4909 cycles) -- which is
// still far below the 65536 cycles needed to generate the next window.
//
// [13] used sequence lengths that are not powers of two (20000 bits); the
// baseline here uses the nearest power of two per test, which changes the
// per-test areas by a few percent and nothing structural.
#include "core/design_config.hpp"
#include "core/monitor.hpp"
#include "hw/standalone.hpp"
#include "msp430/firmware.hpp"
#include "nist/distributions.hpp"
#include "nist/special_functions.hpp"
#include "trng/sources.hpp"

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

using namespace otf;

namespace {

unsigned slices_of(const rtl::component& c)
{
    return rtl::estimate_spartan6(c.cost()).slices;
}

} // namespace

int main()
{
    const double alpha = 0.01;

    std::printf("Table IV -- unified HW/SW design vs per-test full-HW "
                "baseline ([13]-style)\n\n");

    // ---- baseline: individual tests at [13]'s sequence lengths ----------
    // [13]: test1/2/3/13 at 20000 bits (po2: 2^14 = 16384), test4 at 128,
    // test7 at 2048.
    std::printf("%-8s %-12s %18s\n", "test", "length([13])",
                "slices(model)");

    unsigned total_baseline = 0;

    hw::standalone_frequency t1(
        14, static_cast<std::uint64_t>(
                std::floor(std::sqrt(2.0 * 16384) * nist::erfc_inv(alpha))));
    total_baseline += slices_of(t1);
    std::printf("%-8s %-12s %18u\n", "test1", "16384(20000)", slices_of(t1));

    hw::standalone_block_frequency t2(
        14, 10,
        static_cast<std::uint64_t>(std::floor(
            1024.0 * nist::chi_squared_critical(16.0, alpha))));
    total_baseline += slices_of(t2);
    std::printf("%-8s %-12s %18u\n", "test2", "16384(20000)", slices_of(t2));

    // Eight stored N_ones intervals, the [13] approach.
    const auto runs_cfg = core::custom_design(
        14, hw::test_set{}
                .with(hw::test_id::frequency)
                .with(hw::test_id::runs)
                .with(hw::test_id::cumulative_sums));
    const auto runs_cv =
        core::compute_critical_values(runs_cfg, alpha, 8);
    std::vector<hw::standalone_runs::interval> intervals;
    for (const auto& iv : runs_cv.t3_intervals) {
        intervals.push_back({static_cast<std::uint64_t>(iv.ones_lo),
                             static_cast<std::uint64_t>(iv.ones_hi),
                             static_cast<std::uint64_t>(iv.runs_lo),
                             static_cast<std::uint64_t>(iv.runs_hi)});
    }
    hw::standalone_runs t3(14, intervals);
    total_baseline += slices_of(t3);
    std::printf("%-8s %-12s %18u\n", "test3", "16384(20000)", slices_of(t3));

    const auto pi4 = nist::longest_run_category_probs(8, 1, 4);
    std::vector<std::uint64_t> w4;
    for (const double p : pi4) {
        w4.push_back(static_cast<std::uint64_t>(
            std::llround(std::ldexp(1.0 / p, 12))));
    }
    hw::standalone_longest_run t4(
        7, 3, 1, 4, w4, 0,
        static_cast<std::uint64_t>(std::llround(std::ldexp(
            16.0 * (nist::chi_squared_critical(3.0, alpha) + 16.0), 12))));
    total_baseline += slices_of(t4);
    std::printf("%-8s %-12s %18u\n", "test4", "128(128)", slices_of(t4));

    const auto mv7 = nist::non_overlapping_template_moments(9, 256);
    hw::standalone_non_overlapping t7(
        11, 8, 0b000000001u, 9,
        static_cast<std::uint64_t>(std::floor(std::ldexp(
            mv7.variance * nist::chi_squared_critical(8.0, alpha), 18))));
    total_baseline += slices_of(t7);
    std::printf("%-8s %-12s %18u\n", "test7", "2048(2048)", slices_of(t7));

    const auto cusum_cv = core::compute_critical_values(runs_cfg, alpha);
    hw::standalone_cusum t13(
        14, static_cast<std::uint64_t>(cusum_cv.t13_z_bound));
    total_baseline += slices_of(t13);
    std::printf("%-8s %-12s %18u\n", "test13", "16384(20000)",
                slices_of(t13));

    std::printf("%-8s %-12s %18u   (paper: 256)\n", "sum", "",
                total_baseline);

    // ---- this work: unified 65536-bit design with the same six tests ----
    const auto unified_cfg = core::paper_design(16, core::tier::medium);
    const hw::testing_block unified(unified_cfg);
    const unsigned unified_slices = slices_of(unified);
    std::printf("\nunified %s (tests 1,2,3,4,7,13 at 65536 bits): "
                "%u slices   (paper: 168)\n",
                unified_cfg.name.c_str(), unified_slices);
    std::printf("unified / baseline-sum = %.2f   (paper: 168/256 = 0.66, "
                "\"around 20%% less\")\n",
                static_cast<double>(unified_slices) / total_baseline);

    // ---- latency ---------------------------------------------------------
    const unsigned baseline_latency = t1.decision_latency()
        + t2.decision_latency() + t3.decision_latency()
        + t4.decision_latency() + t7.decision_latency()
        + t13.decision_latency();

    core::monitor mon(unified_cfg, alpha);
    trng::ideal_source src(0x1AB);
    const auto rep = mon.test_window(src);

    std::printf("\nlatency after the last bit:\n");
    std::printf("  [13]-style full-HW decision:   %u cycles (paper: 21)\n",
                baseline_latency);
    std::printf("  this work, SW on openMSP430:   %llu cycles "
                "(paper: 4909)\n",
                static_cast<unsigned long long>(rep.sw_cycles));
    std::printf("  window generation time:        %llu cycles\n",
                static_cast<unsigned long long>(rep.generation_cycles));
    std::printf("  SW latency %s generation time -> on-the-fly operation "
                "holds\n",
                rep.sw_cycles < rep.generation_cycles ? "<" : ">=");

    core::monitor mon32(unified_cfg, alpha, sw16::cortex_like_model());
    trng::ideal_source src32(0x1AB);
    const auto rep32 = mon32.test_window(src32);
    std::printf("  (32-bit-platform projection:   %llu cycles -- the "
                "paper's future-work point)\n",
                static_cast<unsigned long long>(rep32.sw_cycles));

    // ---- execution-measured quick tests on the MSP430 ISA model ----------
    {
        const auto light_cfg = core::paper_design(16, core::tier::light);
        const auto cv = core::compute_critical_values(light_cfg, alpha);
        hw::testing_block block(light_cfg);
        trng::ideal_source bits(0x1AB);
        block.run(bits.generate(light_cfg.n()));
        const auto fw = msp430::build_quick_test_firmware(
            light_cfg, cv, block.registers());
        msp430::cpu mcu;
        const std::uint64_t measured =
            msp430::run_quick_tests(mcu, fw, block.registers());
        std::printf("\nexecution-measured on the MSP430 ISA model "
                    "(quick tests 1 + 13 + N_ones derivation):\n");
        std::printf("  %llu cycles over %llu retired instructions -- "
                    "instruction-level confirmation\n  that the "
                    "always-on tier decides in well under one window.\n",
                    static_cast<unsigned long long>(measured),
                    static_cast<unsigned long long>(
                        mcu.instructions_retired()));
    }
    return 0;
}
