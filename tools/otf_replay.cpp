// otf_replay: deterministic forensics over a telemetry segment.
//
// Reads a durable telemetry log (core/telemetry_log.hpp), recovers the
// valid record prefix (torn tails and corrupt frames are truncated, not
// fatal), prints the supervision timeline, and -- the point of the tool
// -- re-runs the offline SP 800-22 battery over the logged evidence
// windows exactly as the live supervisor did, demanding bit-identical
// verdicts.  The log is the evidence; replay proves it.
//
// Usage:
//   otf_replay <segment> [--json] [--quiet]
//
// Exit status:
//   0  log recovered and every confirmation replayed bit-identical
//   1  replay mismatch (or an unreadable/config-less log)
//   2  usage error
//
// A dirty tail (recovered prefix shorter than the file) is reported but
// is NOT a failure: that is the WAL doing its job after a crash.
#include "core/telemetry_log.hpp"

#include "base/json.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>

namespace {

void print_usage()
{
    std::fprintf(stderr,
                 "usage: otf_replay <segment> [--json] [--quiet]\n"
                 "  --json   machine-readable report on stdout\n"
                 "  --quiet  suppress the per-event timeline\n");
}

void print_timeline(const otf::core::telemetry_run& run)
{
    for (const otf::core::supervision_event& ev : run.events) {
        std::printf("  [%6llu] %-13s dwell=%llu",
                    static_cast<unsigned long long>(ev.window_index),
                    otf::core::to_string(ev.kind).c_str(),
                    static_cast<unsigned long long>(ev.dwell));
        if (!ev.from_design.empty()) {
            std::printf("  %s -> %s", ev.from_design.c_str(),
                        ev.to_design.c_str());
        }
        if (ev.confirmation) {
            std::printf("  battery %u/%u failed%s",
                        ev.confirmation->battery.failed,
                        ev.confirmation->battery.failed
                            + ev.confirmation->battery.passed,
                        ev.confirmation->confirmed ? " CONFIRMED" : "");
        }
        std::printf("\n");
    }
}

void write_json(const otf::core::telemetry_run& run,
                const otf::core::replay_report& rep)
{
    otf::json_writer json;
    json.begin_object("");
    json.value("schema", std::uint64_t{run.schema});
    json.value("clean", run.clean);
    json.value("file_bytes", run.file_bytes);
    json.value("valid_bytes", run.valid_bytes);
    json.value("windows", static_cast<std::uint64_t>(run.windows.size()));
    json.value("events", static_cast<std::uint64_t>(run.events.size()));
    json.value("checkpoints",
               static_cast<std::uint64_t>(run.checkpoints.size()));
    json.value("windows_replayed", rep.windows_replayed);
    json.value("checkpoints_consistent", rep.checkpoints_consistent);
    json.begin_array("confirmations");
    for (const otf::core::replay_confirmation& rc : rep.confirmations) {
        json.begin_object();
        json.value("window", rc.window);
        json.value("live_confirmed", rc.live.confirmed);
        json.value("replayed_confirmed", rc.replayed.confirmed);
        json.value("match", rc.match);
        json.end_object();
    }
    json.end_array();
    json.value("verified", rep.verified);
    json.end_object();
    std::printf("%s\n", json.str().c_str());
}

} // namespace

int main(int argc, char** argv)
{
    std::string path;
    bool as_json = false;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            as_json = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "otf_replay: unknown option %s\n",
                         arg.c_str());
            print_usage();
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            print_usage();
            return 2;
        }
    }
    if (path.empty()) {
        print_usage();
        return 2;
    }

    try {
        const otf::core::telemetry_run run =
            otf::core::read_telemetry(path);
        if (!run.header_ok) {
            std::fprintf(stderr,
                         "otf_replay: %s is not a telemetry segment "
                         "(bad header)\n",
                         path.c_str());
            return 1;
        }
        const otf::core::replay_report rep =
            otf::core::verify_replay(run);

        if (as_json) {
            write_json(run, rep);
        } else {
            std::printf("%s: schema %u, %llu/%llu bytes valid%s\n",
                        path.c_str(), run.schema,
                        static_cast<unsigned long long>(run.valid_bytes),
                        static_cast<unsigned long long>(run.file_bytes),
                        run.clean ? "" : " (tail truncated)");
            std::printf("  %zu evidence windows, %zu events, "
                        "%zu checkpoints\n",
                        run.windows.size(), run.events.size(),
                        run.checkpoints.size());
            if (!quiet) {
                print_timeline(run);
            }
            for (const otf::core::replay_confirmation& rc :
                 rep.confirmations) {
                std::printf(
                    "  confirmation @%llu: live %s / replayed %s -- %s\n",
                    static_cast<unsigned long long>(rc.window),
                    rc.live.confirmed ? "confirmed" : "unconfirmed",
                    rc.replayed.confirmed ? "confirmed" : "unconfirmed",
                    rc.match ? "bit-identical" : "MISMATCH");
            }
            std::printf("replay: %s\n",
                        rep.verified ? "verified" : "FAILED");
        }
        return rep.verified ? 0 : 1;
    } catch (const std::exception& err) {
        std::fprintf(stderr, "otf_replay: %s\n", err.what());
        return 1;
    }
}
