// Adaptive monitoring: a full escalate -> confirm -> de-escalate
// timeline.
//
//   $ ./adaptive_monitoring
//
// The closed loop the paper's platform enables: a TRNG channel runs
// under a cheap always-on design; an SRAM-style entropy collapse hits
// mid-run (a supply-voltage dip); the k-of-w alarm trips and the
// supervisor reprograms the live testing block to the full nine-test
// design *through the register map*, replays the captured evidence
// through the offline SP 800-22 battery for confirmation, and -- once
// the supply recovers and the heavy design has seen a clean dwell --
// reprograms the block back to the baseline and re-arms the alarm.
// Every transition is printed from the structured event log.
#include "base/env.hpp"
#include "core/design_config.hpp"
#include "core/scenario.hpp"
#include "core/supervisor.hpp"
#include "trng/source_model.hpp"
#include "trng/sources.hpp"

#include <cstdio>
#include <memory>

using namespace otf;

int main()
{
    // Baseline: a 4096-bit frequency/runs/cusum watchdog (the cheap
    // always-on tier).  Escalated: all nine tests on the same window
    // length -- the heavy design suspicion buys.
    core::supervisor_config cfg;
    cfg.baseline = core::custom_design(
        12, hw::test_set{}
                .with(hw::test_id::frequency)
                .with(hw::test_id::runs)
                .with(hw::test_id::cumulative_sums));
    cfg.baseline.name = "n=4096 watchdog";
    cfg.escalated = core::custom_design(
        12, hw::test_set{}
                .with(hw::test_id::frequency)
                .with(hw::test_id::block_frequency)
                .with(hw::test_id::runs)
                .with(hw::test_id::longest_run)
                .with(hw::test_id::non_overlapping_template)
                .with(hw::test_id::overlapping_template)
                .with(hw::test_id::serial)
                .with(hw::test_id::approximate_entropy)
                .with(hw::test_id::cumulative_sums));
    cfg.escalated.name = "n=4096 full battery";
    cfg.alpha = 0.001;
    cfg.fail_threshold = 2;
    cfg.policy_window = 4;
    cfg.evidence_windows = 6;
    cfg.dwell_windows = smoke_scaled<std::uint64_t>(8, 4);

    const std::uint64_t windows = smoke_scaled<std::uint64_t>(64, 40);
    const std::uint64_t attack_on = 10;
    const std::uint64_t attack_off = 22;
    const std::size_t nwords =
        static_cast<std::size_t>(cfg.baseline.n() / 64);

    std::printf("adaptive monitoring: %s -> %s on suspicion\n",
                cfg.baseline.name.c_str(), cfg.escalated.name.c_str());
    std::printf("alarm %u-of-%u at alpha %.4g, evidence %zu windows, "
                "de-escalation dwell %llu clean windows\n",
                cfg.fail_threshold, cfg.policy_window, cfg.alpha,
                cfg.evidence_windows,
                static_cast<unsigned long long>(cfg.dwell_windows));
    std::printf("attack: SRAM entropy collapse (supply dip), windows "
                "%llu..%llu of %llu\n\n",
                static_cast<unsigned long long>(attack_on),
                static_cast<unsigned long long>(attack_off),
                static_cast<unsigned long long>(windows));

    // The attacked channel: an SRAM collapse pulse riding the severity
    // schedule at word granularity (the supply dips and recovers).
    trng::entropy_collapse_source::parameters params;
    params.cell_one_prob = 0.6;
    auto source = std::make_unique<trng::entropy_collapse_source>(
        std::make_unique<trng::ideal_source>(2027), 2028, params);
    trng::source_model* model = source.get();
    core::severity_schedule schedule{
        core::severity_schedule::shape::pulse, 1.0, attack_on,
        0, attack_off - attack_on};

    core::supervisor sup(cfg);
    core::producer_options opts;
    opts.hook_stride_words = nwords;
    opts.word_hook = [model, schedule, nwords](std::uint64_t word) {
        model->set_severity(schedule.severity_at(word / nwords));
    };
    const core::supervision_report rep =
        sup.run(*source, windows, std::move(opts));

    std::printf("timeline (%zu events over %llu windows):\n",
                rep.events.size(),
                static_cast<unsigned long long>(rep.windows));
    for (const core::supervision_event& ev : rep.events) {
        std::printf("  window %3llu  %-13s",
                    static_cast<unsigned long long>(ev.window_index),
                    core::to_string(ev.kind).c_str());
        if (!ev.from_design.empty()) {
            std::printf("  %s -> %s", ev.from_design.c_str(),
                        ev.to_design.c_str());
        }
        if (ev.confirmation) {
            const core::confirmation_result& conf = *ev.confirmation;
            std::printf("  offline battery on %llu evidence windows "
                        "(%llu bits): %u failed / %u passed -> %s",
                        static_cast<unsigned long long>(
                            conf.evidence_windows),
                        static_cast<unsigned long long>(
                            conf.evidence_bits),
                        conf.battery.failed, conf.battery.passed,
                        conf.confirmed ? "CONFIRMED" : "not confirmed");
        }
        std::printf("\n");
    }

    std::printf("\nrun summary: %llu windows (%llu escalated), %llu "
                "failures, %u escalation(s), %u confirmed, %u "
                "de-escalation(s)\n",
                static_cast<unsigned long long>(rep.windows),
                static_cast<unsigned long long>(rep.windows_escalated),
                static_cast<unsigned long long>(rep.failures),
                rep.escalations, rep.confirmed_escalations,
                rep.de_escalations);
    std::printf("final state: %s (%s)\n",
                rep.final_state == core::supervision_state::baseline
                    ? "baseline"
                    : "escalated",
                sup.inner().config().name.c_str());

    const bool ok = rep.escalations >= 1
        && rep.confirmed_escalations == rep.escalations
        && rep.de_escalations >= 1
        && rep.final_state == core::supervision_state::baseline;
    std::printf("\n%s\n",
                ok ? "closed loop: escalated on the dip, confirmed "
                     "offline, de-escalated after recovery"
                   : "TIMELINE FAILED: expected escalate -> confirm -> "
                     "de-escalate back to baseline");
    return ok ? 0 : 1;
}
