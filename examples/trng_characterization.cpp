// Laboratory-style characterization of a TRNG design.
//
// Before committing an entropy source to silicon, a designer sweeps its
// physical parameters and checks the statistical quality margin.  This
// example characterizes the ring-oscillator TRNG model across its jitter
// budget: for each design point it runs the offline 15-test battery
// (including the tests the on-chip hardware cannot afford) and the
// platform's own on-the-fly monitor, reporting the minimum jitter at
// which the design is sound -- and how much margin the chosen operating
// point has before the on-the-fly tests start to object.
#include "base/env.hpp"
#include "core/design_config.hpp"
#include "core/monitor.hpp"
#include "nist/battery.hpp"
#include "trng/ring_oscillator.hpp"

#include <cstdio>
#include <vector>

using namespace otf;

int main()
{
    const auto cfg = core::paper_design(16, core::tier::high);

    std::printf("ring-oscillator TRNG characterization "
                "(sampling divider 1024, window %llu bits)\n\n",
                static_cast<unsigned long long>(cfg.n()));
    std::printf("%-14s %-16s %-18s %-14s\n", "jitter/period",
                "sigma per sample", "offline battery", "on-the-fly");

    const std::vector<double> jitter_sweep = smoke_scaled(
        std::vector<double>{0.002, 0.004, 0.008, 0.012, 0.016, 0.024},
        std::vector<double>{0.004, 0.016});
    for (const double jitter : jitter_sweep) {
        trng::ring_oscillator_source::parameters params;
        params.jitter_per_period = jitter;
        trng::ring_oscillator_source source(0xD0E, params);

        const bit_sequence seq = source.generate(cfg.n());
        const auto offline = nist::run_battery(seq, 0.01);

        core::monitor monitor(cfg, 0.01);
        const auto online = monitor.test_sequence(seq);
        unsigned online_failures = 0;
        for (const auto& v : online.software.verdicts) {
            online_failures += v.pass ? 0 : 1;
        }

        std::printf("%-14.3f %-16.3f %4u fail/%3zu     %4u fail/%zu\n",
                    jitter, source.effective_sigma(), offline.failed,
                    offline.entries.size(), online_failures,
                    online.software.verdicts.size());
    }

    std::printf("\ninterpretation: below ~0.008/period the accumulated "
                "jitter no longer\ndecorrelates successive samples and "
                "both flows reject; the shipping\nconfiguration (0.016) "
                "holds a 2x margin.  The on-the-fly verdicts track\nthe "
                "offline battery, so the deployed monitor guards the same "
                "boundary the\nlab characterization established.\n");
    return 0;
}
