// Continuous health monitoring of an aging TRNG.
//
// The paper distinguishes "quick tests for fast detection of the total
// failure of the entropy source" from "slow tests for the detection of
// long term statistical weaknesses".  This example runs the AIS-31-style
// health supervisor over the lifetime of a slowly degrading device: the
// lightweight always-on design watches every window, failure statistics
// accumulate per test, and the alarm policy (k failures in the last w
// windows) turns the noisy per-window verdicts into a stable decision.
#include "core/design_config.hpp"
#include "core/monitor.hpp"
#include "trng/sources.hpp"

#include <cstdio>

int main()
{
    using namespace otf;

    // The always-on watchdog tier: five tests, ~50 slices of hardware.
    const auto design = core::paper_design(16, core::tier::light);
    core::health_monitor supervisor(design, 0.01,
                                    {.fail_threshold = 3, .window = 8});

    // A device whose bias drifts to 0.54 over 60 windows of lifetime.
    trng::aging_source device(2718, 0.54,
                              60ull * design.n());

    std::printf("lifetime monitoring of an aging TRNG (%s, alpha = 0.01, "
                "alarm = 3-of-8)\n\n",
                design.name.c_str());
    std::printf("%-7s %-10s %-9s %-8s %s\n", "window", "true p(1)",
                "verdict", "alarm", "note");

    // The alarm path reports its rising edge as an event -- no need to
    // poll-and-compare around every observe().
    unsigned alarm_window = 0;
    unsigned alarm_evidence = 0;
    supervisor.on_alarm([&](const core::alarm_event& ev) {
        alarm_window = static_cast<unsigned>(ev.window_index);
        alarm_evidence = ev.recent_failures;
    });
    for (unsigned window = 0; window < 80 && !supervisor.alarm();
         ++window) {
        const double p_now = device.current_p_one();
        const auto report = supervisor.observe(device);
        const bool failed = !report.software.all_pass;
        if (window % 8 == 0 || failed || supervisor.alarm()) {
            std::printf("%-7u %-10.4f %-9s %-8s %s\n", window, p_now,
                        failed ? "FAIL" : "pass",
                        supervisor.alarm() ? "RAISED" : "-",
                        supervisor.alarm()
                            ? "device taken out of service"
                            : (failed ? "recorded by policy" : ""));
        }
    }

    std::printf("\nsummary after %llu windows:\n",
                static_cast<unsigned long long>(supervisor.windows_total()));
    std::printf("  windows failed: %llu\n",
                static_cast<unsigned long long>(
                    supervisor.windows_failed()));
    for (const auto& [test, count] : supervisor.failures_by_test()) {
        std::printf("  %-24s flagged %llu time(s)\n", test.c_str(),
                    static_cast<unsigned long long>(count));
    }
    if (alarm_window > 0) {
        std::printf("\nthe supervisor retired the device at window %u "
                    "(%u failures in the policy\nwindow), while its "
                    "bias was still only %.3f -- long before a "
                    "catastrophic failure.\n",
                    alarm_window, alarm_evidence,
                    device.current_p_one());
    }

    std::printf("\nlifetime software cost: %s\n",
                sw16::to_string(supervisor.inner().lifetime_ops()).c_str());
    return 0;
}
