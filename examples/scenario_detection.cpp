// Scenario detection: drive an adversarial source model through its
// severity schedule and watch the on-the-fly monitor catch it.
//
//   $ ./scenario_detection
//
// Two views of the same machinery:
//
//   1. A hand-rolled timeline: an SRAM-style entropy-collapse model
//      (docs/SCENARIOS.md) over a healthy source, severity ramped window
//      by window like a supply-voltage attack, printing the per-window
//      verdicts as the collapse becomes visible.
//   2. The declarative path: core::scenario_runner executing the standard
//      adversarial library against the same design and summarizing
//      detection latency per scenario.
//
// Exits nonzero unless the timeline attack is caught after its onset and
// every library attack is detected with the null scenario silent.
#include "base/env.hpp"
#include "core/design_config.hpp"
#include "core/scenario.hpp"
#include "trng/source_model.hpp"
#include "trng/sources.hpp"

#include <cstdio>
#include <memory>
#include <string>

int main()
{
    using namespace otf;

    const hw::block_config design =
        core::paper_design(16, core::tier::high);

    // -- 1. Hand-rolled timeline ------------------------------------------
    core::scenario_config cfg;
    cfg.windows = smoke_scaled<std::uint64_t>(32, 12);
    cfg.trials = 1;
    const std::uint64_t onset = smoke_scaled<std::uint64_t>(8, 3);
    const core::severity_schedule ramp{
        core::severity_schedule::shape::ramp, 1.0, onset,
        smoke_scaled<std::uint64_t>(8, 3), 0};

    core::monitor mon(design, cfg.alpha);
    core::windowed_alarm alarm(cfg.fail_threshold, cfg.policy_window);
    trng::entropy_collapse_source::parameters collapse;
    collapse.cell_one_prob = 0.6;
    auto model = std::make_unique<trng::entropy_collapse_source>(
        std::make_unique<trng::ideal_source>(2026), 2027, collapse);

    std::printf("timeline: %s under a ramped SRAM entropy collapse "
                "(onset window %llu)\n",
                design.name.c_str(),
                static_cast<unsigned long long>(onset));
    std::printf("%-8s %-9s %-7s %-7s %s\n", "window", "severity",
                "verdict", "alarm", "failing tests");
    std::uint64_t caught_at = cfg.windows;
    for (std::uint64_t w = 0; w < cfg.windows; ++w) {
        model->set_severity(ramp.severity_at(w));
        const core::window_report wr = mon.test_window_words(*model);
        const bool failed = !wr.software.all_pass;
        const bool raised = alarm.record(failed);
        if (raised && caught_at == cfg.windows) {
            caught_at = w;
        }
        std::string tests;
        for (const core::test_verdict& v : wr.software.verdicts) {
            if (!v.pass) {
                tests += (tests.empty() ? "" : ", ") + v.name;
            }
        }
        std::printf("%-8llu %-9.2f %-7s %-7s %s\n",
                    static_cast<unsigned long long>(w),
                    ramp.severity_at(w), failed ? "FAIL" : "pass",
                    raised ? "RAISED" : "-", tests.c_str());
    }
    const bool timeline_ok = caught_at >= onset && caught_at < cfg.windows;
    std::printf("-> %s\n\n",
                timeline_ok ? "attack caught after onset"
                            : "attack NOT caught after onset");

    // -- 2. The declarative library ---------------------------------------
    const core::scenario_runner runner(design, cfg);
    const auto reports = runner.run_all(core::standard_scenarios(
        onset, smoke_scaled<std::uint64_t>(8, 3)));
    std::printf("standard library on %s:\n", design.name.c_str());
    bool library_ok = true;
    for (const core::scenario_report& rep : reports) {
        library_ok = library_ok && rep.expectation_met();
        if (rep.expect_alarm) {
            std::printf("  %-14s %s, latency %.1f windows\n",
                        rep.scenario_name.c_str(),
                        rep.detected() ? "detected" : "MISSED",
                        rep.mean_detection_latency);
        } else {
            std::printf("  %-14s %s\n", rep.scenario_name.c_str(),
                        rep.trials_alarmed == 0 ? "silent (as it must be)"
                                                : "ALARMED (false)");
        }
    }
    std::printf("\n%s\n",
                timeline_ok && library_ok
                    ? "scenario detection: all expectations met"
                    : "scenario detection FAILED");
    return timeline_ok && library_ok ? 0 : 1;
}
