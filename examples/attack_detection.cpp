// Frequency-injection attack, caught on the fly.
//
// Scenario from the paper's Section II-B: a ring-oscillator TRNG is
// attacked through its power supply (Markettos & Moore, CHES 2009); the
// injected signal locks the oscillator, the accumulated jitter collapses,
// and the output becomes structured while staying roughly balanced.  The
// on-the-fly monitor watches every window; the attack shows up in the
// run- and pattern-sensitive tests within one window of its onset.
#include "base/env.hpp"
#include "core/design_config.hpp"
#include "core/monitor.hpp"
#include "trng/ring_oscillator.hpp"

#include <cstdio>
#include <string>

int main()
{
    using namespace otf;

    const auto design = core::paper_design(16, core::tier::high);
    core::monitor monitor(design, 0.01);
    trng::ring_oscillator_source trng(7, {});

    std::printf("ring-oscillator TRNG under a frequency-injection attack\n");
    std::printf("design: %s, one row per %llu-bit window\n\n",
                design.name.c_str(),
                static_cast<unsigned long long>(design.n()));
    std::printf("%-7s %-10s %-8s %s\n", "window", "injection", "verdict",
                "failing tests");

    // Smoke runs keep three post-attack windows: enough to show detection.
    const unsigned total_windows = smoke_scaled(12u, 9u);
    unsigned detected_at = 0;
    for (unsigned window = 0; window < total_windows; ++window) {
        // The attacker switches the injection generator on at window 6 and
        // strengthens the lock as it tunes to the oscillator.
        double lock = 0.0;
        if (window >= 6) {
            lock = 0.80 + 0.05 * (window - 6);
            if (lock > 0.98) {
                lock = 0.98;
            }
        }
        trng.set_injection(lock);

        const auto report = monitor.test_window(trng);
        std::string failing;
        for (const auto& v : report.software.verdicts) {
            if (!v.pass) {
                failing += (failing.empty() ? "" : ", ") + v.name;
            }
        }
        if (!report.software.all_pass && detected_at == 0 && window >= 6) {
            detected_at = window;
        }
        std::printf("%-7u %-10.2f %-8s %s\n", window, lock,
                    report.software.all_pass ? "healthy" : "ATTACK",
                    failing.empty() ? "-" : failing.c_str());
    }

    if (detected_at > 0) {
        std::printf("\nattack switched on in window 6, flagged in window "
                    "%u -- detection latency %u window(s), i.e. within "
                    "%llu generated bits.\n",
                    detected_at, detected_at - 6 + 1,
                    static_cast<unsigned long long>(
                        (detected_at - 6 + 1) * design.n()));
    } else {
        std::printf("\nattack was not flagged -- unexpected; see "
                    "bench/detection_power for the sweep.\n");
    }
    std::printf("\nNote the platform reports *numeric* per-test verdicts, "
                "not one alarm wire:\ngrounding a single alarm signal (the "
                "fault attack the paper describes) has\nno equivalent "
                "here -- an attacker would have to forge every counter "
                "value\nconsistently.\n");
    return 0;
}
