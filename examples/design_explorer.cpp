// Design-space exploration: choosing a testing-block configuration.
//
// "As with most practical implementations, there is no golden way to the
// perfect system in a generic way, and different applications demand
// different design trade-offs."  This example walks the paper's eight
// design points plus fully custom lengths (the paper's future-work
// flexibility: software-selectable sequence length and parameters) and
// prints the trade-off table a designer would choose from: hardware area,
// maximum bit rate, number of tests, software latency, and the
// HW->SW interface width.
#include "base/env.hpp"
#include "core/design_config.hpp"
#include "core/monitor.hpp"
#include "trng/sources.hpp"

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

using namespace otf;

namespace {

void print_row(const hw::block_config& cfg)
{
    const hw::testing_block block(cfg);
    const auto fpga = rtl::estimate_spartan6(block.cost());
    const auto asic = rtl::estimate_umc130(block.cost());

    core::monitor mon(cfg, 0.01);
    trng::ideal_source src(1);
    const auto rep = mon.test_window(src);

    std::printf("%-20s %5u %7u %7u %8.0f %7u %8u %9llu %10s\n",
                cfg.name.c_str(), cfg.tests.count(), fpga.slices,
                fpga.luts, fpga.max_freq_mhz, asic.gate_equivalents,
                block.registers().total_words(),
                static_cast<unsigned long long>(rep.sw_cycles),
                rep.sw_cycles < cfg.n() ? "gap-free" : "duty-cycled");
}

} // namespace

int main()
{
    std::printf("design-space exploration (alpha = 0.01, openMSP430 "
                "software platform)\n\n");
    std::printf("%-20s %5s %7s %7s %8s %7s %8s %9s %10s\n", "design",
                "tests", "slices", "LUTs", "MHz", "GE", "bus-w16",
                "sw-cycles", "testing");

    std::printf("-- the paper's eight design points --\n");
    for (const auto& cfg : core::all_paper_designs()) {
        // Smoke runs skip the 2^20 points: their critical-value
        // precomputation dominates the runtime without adding coverage.
        if (otf::smoke_mode() && cfg.n() > (1u << 16)) {
            continue;
        }
        print_row(cfg);
    }

    // The custom sweep: the paper's future-work flexibility is not just
    // any power-of-two length but any (length, test-subset) point --
    // exactly the axis the escalation supervisor moves along when it
    // reprograms a live block.  Sweep a tier ladder at each custom
    // length, from the 3-test watchdog to the full battery.
    std::printf("\n-- custom_design sweep (any power-of-two n x any "
                "test subset) --\n");
    const auto watchdog = hw::test_set{}
                              .with(hw::test_id::frequency)
                              .with(hw::test_id::runs)
                              .with(hw::test_id::cumulative_sums);
    const auto light = hw::test_set{watchdog}
                           .with(hw::test_id::block_frequency)
                           .with(hw::test_id::longest_run);
    const auto patterns = hw::test_set{light}
                              .with(hw::test_id::non_overlapping_template)
                              .with(hw::test_id::overlapping_template);
    const auto all = hw::test_set{patterns}
                         .with(hw::test_id::serial)
                         .with(hw::test_id::approximate_entropy);
    const std::vector<std::pair<const char*, hw::test_set>> subsets{
        {"watchdog", watchdog},
        {"light", light},
        {"patterns", patterns},
        {"full", all}};
    const std::vector<unsigned> custom_lengths = otf::smoke_scaled(
        std::vector<unsigned>{13u, 14u, 18u}, std::vector<unsigned>{13u});
    for (const unsigned log2_n : custom_lengths) {
        for (const auto& [label, tests] : subsets) {
            hw::block_config cfg = core::custom_design(log2_n, tests);
            cfg.name = "n=2^" + std::to_string(log2_n) + " "
                + std::string(label);
            print_row(cfg);
        }
    }

    std::printf("\nreading the table:\n");
    std::printf("  - 'gap-free' means the software pass finishes before "
                "the TRNG fills the\n    next window (1 bit/cycle), so "
                "testing never pauses generation;\n");
    std::printf("  - the light tiers are the always-on watchdogs; the "
                "high tiers the\n    long-term evaluators -- the paper's "
                "quick-vs-slow test split;\n");
    std::printf("  - bus-w16 is the interface pressure: how many 16-bit "
                "reads one software\n    collection pass issues.\n");
    return 0;
}
