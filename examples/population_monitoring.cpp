// Population monitoring: a heterogeneous device fleet as sharded
// fleets-of-fleets.
//
//   $ ./population_monitoring
//
// The production shape of the paper's platform: hundreds of devices, each
// with its own bias point, some fraction under attack with per-device
// model, severity and onset drawn from one master seed
// (trng::sample_device), monitored by independent per-shard fleets whose
// telemetry streams into a single aggregator through a lock-free event
// queue (core::population_monitor).  The report answers the fleet
// operator's questions: which device kinds alarmed, how fast attacks were
// caught (latency percentiles), and how many false escalations a
// device-day of healthy traffic is expected to cost.
#include "base/env.hpp"
#include "core/design_config.hpp"
#include "core/population.hpp"

#include <cstdio>

int main()
{
    using namespace otf;

    core::population_config cfg;
    cfg.block = core::paper_design(7, core::tier::light);
    cfg.escalated_block = core::paper_design(7, core::tier::medium);
    cfg.devices = smoke_scaled<std::uint32_t>(512, 128);
    cfg.shards = 2;
    cfg.windows_per_device = smoke_scaled<std::uint64_t>(16, 8);
    cfg.master_seed = 20250807;
    // A deliberately hostile population: a third of the fleet attacked,
    // with every model family represented.
    cfg.profile.attacked_fraction = 1.0 / 3.0;

    std::printf("population: %u devices over %u shards, %llu windows "
                "each, %s escalating to %s\n\n",
                cfg.devices, cfg.shards,
                static_cast<unsigned long long>(cfg.windows_per_device),
                cfg.block.name.c_str(), cfg.escalated_block->name.c_str());

    core::population_monitor pop(cfg);
    const core::population_report report = pop.run();
    std::printf("%s", core::format_population(report).c_str());

    // The run succeeds when the monitoring caught attacks: some attacked
    // device must have been detected at or after its onset, and the
    // telemetry path must have carried every device's record.
    const bool ok = report.detected > 0
        && report.queue_pushed == report.devices
        && report.devices_attacked + report.devices_healthy
        == report.devices;
    std::printf("\n%s\n", ok ? "population monitoring: attacks detected"
                             : "population monitoring FAILED");
    return ok ? 0 : 1;
}
