// Quickstart: wire a TRNG to the on-the-fly testing platform and check one
// window of output.
//
//   $ ./quickstart
//
// Builds the paper's 65536-bit high-tier design (all nine tests), streams
// one window from a simulated healthy TRNG through the hardware model,
// runs the embedded software pass, and prints the verdicts with the
// instruction/latency accounting.
#include "core/design_config.hpp"
#include "core/monitor.hpp"
#include "core/report.hpp"
#include "trng/sources.hpp"

#include <cstdio>

int main()
{
    using namespace otf;

    // 1. Pick a design point: sequence length 2^16, all nine tests.
    const hw::block_config design =
        core::paper_design(16, core::tier::high);

    // 2. Build the monitor: hardware testing block + software platform
    //    with precomputed critical values at the chosen significance.
    const double alpha = 0.01;
    core::monitor monitor(design, alpha);

    // 3. Attach an entropy source (here: a healthy simulated TRNG).
    trng::ideal_source trng(2025);

    // 4. Test one window of TRNG output on the fly.
    const core::window_report report = monitor.test_window(trng);

    // 5. Inspect the result: per-test numeric verdicts, no alarm wire.
    std::printf("design: %s, alpha = %.2f\n\n", design.name.c_str(),
                alpha);
    std::printf("%s\n", core::format_window(report).c_str());

    // The same object also answers area questions about the hardware:
    std::printf("hardware cost: %s\n",
                core::format_area(monitor.block()).c_str());
    return report.software.all_pass ? 0 : 1;
}
