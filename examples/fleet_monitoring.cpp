// Fleet monitoring: one supervisor, many TRNG channels.
//
//   $ ./fleet_monitoring
//
// A deployment the paper's single-channel platform scales into: eight TRNG
// channels (say, eight oscillator banks on one FPGA) each with their own
// on-the-fly testing pipeline, supervised together.  Six channels are
// healthy; channel 6 is under a supply-voltage attack that biases it to
// p(1) = 0.53, and channel 7 has a correlated (sticky) output.  The fleet
// runs every channel's window through the word-at-a-time fast lane on a
// worker pool and aggregates the verdicts; the per-channel AIS-31-style
// alarm (3 failures in the last 8 windows) singles out exactly the two
// attacked channels.
#include "base/env.hpp"
#include "core/design_config.hpp"
#include "core/fleet_monitor.hpp"
#include "core/report.hpp"
#include "trng/sources.hpp"

#include <cstdio>
#include <memory>
#include <string>

int main()
{
    using namespace otf;

    core::fleet_config cfg;
    cfg.block = core::paper_design(16, core::tier::high);
    cfg.block.double_buffered = true; // gap-free window hand-off
    // Nine tests per window: at alpha = 0.01 a healthy channel fails some
    // window ~8% of the time, which a 3-of-8 policy will occasionally
    // escalate.  Supervision therefore runs each test more stringently --
    // the attacked channels below fail by tens of sigma either way.
    cfg.alpha = 0.001;
    cfg.channels = smoke_scaled(8u, 4u);
    cfg.fail_threshold = 3;
    cfg.policy_window = 8;

    const unsigned biased_channel = cfg.channels - 2;
    const unsigned sticky_channel = cfg.channels - 1;
    const auto make_source =
        [&](unsigned c) -> std::unique_ptr<trng::entropy_source> {
        if (c == biased_channel) {
            return std::make_unique<trng::biased_source>(4000 + c, 0.53);
        }
        if (c == sticky_channel) {
            return std::make_unique<trng::markov_source>(4000 + c, 0.60);
        }
        return std::make_unique<trng::ideal_source>(4000 + c);
    };

    const std::uint64_t windows = smoke_scaled<std::uint64_t>(16, 8);
    core::fleet_monitor fleet(cfg);
    const core::fleet_report report = fleet.run(make_source, windows);

    std::printf("fleet: %u channels x %llu windows of %s, alpha = %.3f, "
                "alarm = %u-of-%u\n\n",
                cfg.channels, static_cast<unsigned long long>(windows),
                cfg.block.name.c_str(), cfg.alpha, cfg.fail_threshold,
                cfg.policy_window);
    // The shared plain-text formatter (core/report.hpp) includes the
    // per-channel stream telemetry -- occupancy high-water and stall
    // counters -- that this table used to drop.
    std::printf("%s", core::format_fleet(report).c_str());
    std::printf("aggregate simulation throughput: %.1f Mbit/s "
                "(word lane, %.2f s wall clock)\n",
                report.bits_per_second() / 1e6, report.seconds);

    // The scenario succeeds when exactly the attacked channels alarmed.
    bool correct = report.channels_in_alarm == 2;
    for (const core::channel_report& ch : report.channels) {
        const bool attacked = ch.channel == biased_channel
            || ch.channel == sticky_channel;
        correct = correct && (ch.alarm == attacked);
    }
    std::printf("\n%s\n",
                correct ? "detection: exactly the attacked channels "
                          "are in alarm"
                        : "detection FAILED: alarm set does not match "
                          "the attacked channels");
    return correct ? 0 : 1;
}
