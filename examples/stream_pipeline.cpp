// Streaming pipeline example: open-ended continuous monitoring over the
// producer → ring → pump ingestion core.
//
//   $ ./stream_pipeline              # full run
//   $ OTF_SMOKE=1 ./stream_pipeline  # ctest smoke entry
//
// This is the paper's deployment shape with no batch boundary anywhere:
// a degrading TRNG (bias-drift source model) free-runs on its own
// generation thread, words flow through a lock-free SPSC ring, and
// monitor::run_stream polls verdicts window by window -- the MSP430's
// role -- with an AIS-31-style k-of-w alarm as the per-window sink.
// Nothing decides a window count up front; the *sink* ends the stream by
// returning false once the alarm fires, and the producer is wound down
// through the ring's close protocol.
//
// Exit status checks the contract: the drift must be caught, and the
// ring telemetry must show a live pipeline (words flowed, occupancy
// bounded by capacity).
#include "base/env.hpp"
#include "base/ring_buffer.hpp"
#include "core/design_config.hpp"
#include "core/monitor.hpp"
#include "core/scenario.hpp"
#include "core/stream.hpp"
#include "trng/source_model.hpp"
#include "trng/sources.hpp"

#include <cstdio>
#include <memory>

using namespace otf;

int main()
{
    const hw::block_config design =
        core::paper_design(16, core::tier::high);
    const std::size_t nwords =
        static_cast<std::size_t>(design.n() / 64);

    // A slowly degrading source: the bias walks outward while severity
    // ramps with the stream position (driven by the producer's word
    // hook, one decision per window boundary).
    trng::bias_drift_parameters drift;
    drift.step_bits = 256;
    drift.max_shift_q = 96;
    trng::bias_drift_source source(
        std::make_unique<trng::ideal_source>(2026), 7, drift);
    const std::uint64_t onset = smoke_scaled<std::uint64_t>(6, 2);
    const std::uint64_t ramp = smoke_scaled<std::uint64_t>(8, 2);
    const core::severity_schedule schedule{
        core::severity_schedule::shape::ramp, 1.0, onset, ramp, 0};

    core::monitor mon(design, 0.001);
    core::windowed_alarm alarm(2, 8);

    base::ring_buffer ring(core::default_ring_words(nwords));
    core::producer_options opts; // total_words = 0: open-ended
    opts.hook_stride_words = nwords;
    opts.word_hook = [&](std::uint64_t word) {
        source.set_severity(schedule.severity_at(word / nwords));
    };
    core::word_producer producer(source, ring, opts);
    core::window_pump pump(ring, mon);

    std::printf("continuous monitoring: %s, alarm = 2-of-8, "
                "drift onset at window %llu\n\n",
                design.name.c_str(),
                static_cast<unsigned long long>(onset));
    std::printf("%-8s %-8s %-8s %s\n", "window", "verdict", "alarm",
                "failing tests");

    const std::uint64_t safety_cap = smoke_scaled<std::uint64_t>(256, 64);
    const std::uint64_t windows = core::run_pipeline(
        producer, pump,
        [&](const core::window_report& wr) {
            const bool failed = !wr.software.all_pass;
            const bool alarmed = alarm.record(failed);
            std::string failing;
            for (const core::test_verdict& v : wr.software.verdicts) {
                if (!v.pass) {
                    failing += (failing.empty() ? "" : ", ") + v.name;
                }
            }
            std::printf("%-8llu %-8s %-8s %s\n",
                        static_cast<unsigned long long>(wr.window_index),
                        failed ? "FAIL" : "pass",
                        alarmed ? "ALARM" : "-", failing.c_str());
            return !alarmed; // the sink ends the open-ended stream
        },
        safety_cap);

    const core::stream_stats stats = core::snapshot(ring);
    std::printf("\nstopped after %llu windows; ring: %llu words through, "
                "high-water %zu/%zu, stalls p=%llu c=%llu\n",
                static_cast<unsigned long long>(windows),
                static_cast<unsigned long long>(stats.words),
                stats.max_occupancy, stats.ring_capacity,
                static_cast<unsigned long long>(stats.producer_stalls),
                static_cast<unsigned long long>(stats.consumer_stalls));

    if (!alarm.alarm()) {
        std::printf("CONTRACT FAILED: the drift was never caught\n");
        return 1;
    }
    if (windows <= onset) {
        std::printf("CONTRACT FAILED: alarm before the drift onset\n");
        return 1;
    }
    if (stats.words == 0 || stats.max_occupancy > stats.ring_capacity) {
        std::printf("CONTRACT FAILED: implausible ring telemetry\n");
        return 1;
    }
    std::printf("detected %llu windows after onset\n",
                static_cast<unsigned long long>(windows - onset));
    return 0;
}
