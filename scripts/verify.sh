#!/usr/bin/env sh
# Tier-1 verify: configure, build, and run the full ctest suite.
# Usage: scripts/verify.sh [build-dir] [extra cmake args...]
set -eu

BUILD_DIR="${1:-build}"
[ "$#" -gt 0 ] && shift

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." "$@"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" -j "$JOBS" --output-on-failure
