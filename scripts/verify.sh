#!/usr/bin/env sh
# Tier-1 verify: configure, build, and run the full ctest suite, then the
# fleet-throughput, scenario-matrix and stream-throughput smoke runs (the
# word-lane/fleet, scenario and streaming-pipeline subsystems must never
# bit-rot silently, so they run explicitly even outside ctest).  The
# benches drop their BENCH_*.json telemetry into the build directory
# (docs/BENCHMARKS.md); the files are validated as JSON when python3 is
# available.
# Usage: scripts/verify.sh [build-dir] [extra cmake args...]
set -eu

BUILD_DIR="${1:-build}"
[ "$#" -gt 0 ] && shift

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." "$@"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" -j "$JOBS" --output-on-failure

echo "== fleet bench smoke (OTF_SMOKE=1) =="
OTF_SMOKE=1 OTF_BENCH_DIR="$BUILD_DIR" "$BUILD_DIR"/bench/bench_fleet_throughput

echo "== scenario matrix smoke (OTF_SMOKE=1) =="
OTF_SMOKE=1 OTF_BENCH_DIR="$BUILD_DIR" "$BUILD_DIR"/bench/bench_scenario_matrix

echo "== stream pipeline smoke (OTF_SMOKE=1) =="
OTF_SMOKE=1 OTF_BENCH_DIR="$BUILD_DIR" "$BUILD_DIR"/bench/bench_stream_throughput

echo "== escalation supervisor smoke (OTF_SMOKE=1) =="
# Exercises the --bench-dir= flag (shared by every JSON-writing bench)
# instead of OTF_BENCH_DIR; exit status enforces the escalate/confirm/
# null-silent contract.
OTF_SMOKE=1 "$BUILD_DIR"/bench/bench_escalation --bench-dir="$BUILD_DIR"

echo "== population fleet smoke (OTF_SMOKE=1) =="
# Sharded fleet-of-fleets: exit status enforces detections, full queue
# delivery, and same_counters determinism across shard/thread layouts.
OTF_SMOKE=1 OTF_BENCH_DIR="$BUILD_DIR" "$BUILD_DIR"/bench/bench_population

echo "== replay / durable telemetry smoke (OTF_SMOKE=1) =="
# Supervised attack with the telemetry WAL attached, then a replay pass:
# exit status enforces clean recovery, zero drops and bit-identical
# confirmation verdicts (docs/ARCHITECTURE.md, durable telemetry).
OTF_SMOKE=1 OTF_BENCH_DIR="$BUILD_DIR" "$BUILD_DIR"/bench/bench_replay

echo "== offline replay of the just-written segment =="
# The CLI must reach the same verdict as the in-process replay above.
"$BUILD_DIR"/tools/otf_replay "$BUILD_DIR"/BENCH_replay.wal --quiet

if command -v python3 >/dev/null 2>&1; then
    echo "== validating BENCH_*.json =="
    for f in "$BUILD_DIR"/BENCH_fleet.json "$BUILD_DIR"/BENCH_scenarios.json \
             "$BUILD_DIR"/BENCH_stream.json "$BUILD_DIR"/BENCH_escalation.json \
             "$BUILD_DIR"/BENCH_population.json "$BUILD_DIR"/BENCH_replay.json; do
        python3 -m json.tool "$f" >/dev/null
        echo "ok: $f"
    done

    echo "== validating otf-fleet-bench/3 schema =="
    # The fleet bench must report the /3 schema: the execution axis
    # (threaded vs fused span vs fused 64x64 tile, single worker) next
    # to the lane and scaling axes (docs/BENCHMARKS.md).
    python3 - "$BUILD_DIR"/BENCH_fleet.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "otf-fleet-bench/3", doc["schema"]
exe = doc["execution"]
assert exe["threads"] == 1, exe
assert exe["tile_words"] == 64, exe
for key in ("threaded_mbps", "fused_span_mbps", "fused_tile_mbps",
            "fused_tile_over_threaded"):
    assert exe[key] > 0, (key, exe)
print("ok: otf-fleet-bench/3 (fused tile %.2fx threaded)"
      % exe["fused_tile_over_threaded"])
EOF

    echo "== validating otf-population/2 schema =="
    # The population bench must report the /2 schema: the execution
    # block with the work-stealing scheduler's telemetry, and the
    # layout sweep (now including the threaded execution) deterministic.
    python3 - "$BUILD_DIR"/BENCH_population.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "otf-population/2", doc["schema"]
assert doc["deterministic_across_layouts"] is True
exe = doc["execution"]
assert exe["model"] == "fused", exe
assert exe["worker_threads"] > 0, exe
assert exe["steal_batch_devices"] > 0, exe
assert exe["telemetry_flushes"] > 0, exe
print("ok: otf-population/2 (%d workers, %d steals, %d flushes)"
      % (exe["worker_threads"], exe["steals"], exe["telemetry_flushes"]))
EOF

    echo "== validating otf-stream-bench/3 schema =="
    # The stream bench must report the /3 schema: the generation axis
    # with all six adversarial models, and a streamed channel that took
    # the zero-copy window path (docs/BENCHMARKS.md).
    python3 - "$BUILD_DIR"/BENCH_stream.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "otf-stream-bench/3", doc["schema"]
models = [g["model"] for g in doc["generation"]]
expected = {"rtn", "bias_drift", "lockin", "fault", "entropy_collapse",
            "substitution"}
assert set(models) == expected and len(models) == 6, models
assert doc["zero_copy_windows"] == doc["windows"], (
    doc["zero_copy_windows"], doc["windows"])
assert doc["batch_sweep"], "batch_sweep must not be empty"
print("ok: otf-stream-bench/3 (%d generation models, %d zero-copy windows)"
      % (len(models), doc["zero_copy_windows"]))
EOF
fi

echo "== Release perf guard: fused vs threaded fleet execution =="
# A separate Release build runs the fleet bench with the enforcement
# flag: the fused 64x64 tile lane must not fall behind the threaded
# ring pipeline on a single worker (coarse >= 1.0x bar; full runs track
# the >= 1.3x tile acceptance in BENCH_fleet.json), and the fused span
# lane must stay within scheduling noise of it (>= 0.7x).
PERF_DIR="$BUILD_DIR-perfguard"
cmake -B "$PERF_DIR" -S "$(dirname "$0")/.." -DCMAKE_BUILD_TYPE=Release \
    -DOTF_BUILD_EXAMPLES=OFF
cmake --build "$PERF_DIR" -j "$JOBS" --target bench_fleet_throughput
OTF_SMOKE=1 OTF_ENFORCE_FUSED_BAR=1 OTF_BENCH_DIR="$PERF_DIR" \
    "$PERF_DIR"/bench/bench_fleet_throughput
