#!/usr/bin/env sh
# Tier-1 verify: configure, build, and run the full ctest suite, then the
# fleet-throughput, scenario-matrix and stream-throughput smoke runs (the
# word-lane/fleet, scenario and streaming-pipeline subsystems must never
# bit-rot silently, so they run explicitly even outside ctest).  The
# benches drop their BENCH_*.json telemetry into the build directory
# (docs/BENCHMARKS.md); the files are validated as JSON when python3 is
# available.
# Usage: scripts/verify.sh [build-dir] [extra cmake args...]
set -eu

BUILD_DIR="${1:-build}"
[ "$#" -gt 0 ] && shift

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." "$@"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" -j "$JOBS" --output-on-failure

echo "== fleet bench smoke (OTF_SMOKE=1) =="
OTF_SMOKE=1 OTF_BENCH_DIR="$BUILD_DIR" "$BUILD_DIR"/bench/bench_fleet_throughput

echo "== scenario matrix smoke (OTF_SMOKE=1) =="
OTF_SMOKE=1 OTF_BENCH_DIR="$BUILD_DIR" "$BUILD_DIR"/bench/bench_scenario_matrix

echo "== stream pipeline smoke (OTF_SMOKE=1) =="
OTF_SMOKE=1 OTF_BENCH_DIR="$BUILD_DIR" "$BUILD_DIR"/bench/bench_stream_throughput

echo "== escalation supervisor smoke (OTF_SMOKE=1) =="
# Exercises the --bench-dir= flag (shared by every JSON-writing bench)
# instead of OTF_BENCH_DIR; exit status enforces the escalate/confirm/
# null-silent contract.
OTF_SMOKE=1 "$BUILD_DIR"/bench/bench_escalation --bench-dir="$BUILD_DIR"

echo "== population fleet smoke (OTF_SMOKE=1) =="
# Sharded fleet-of-fleets: exit status enforces detections, full queue
# delivery, and same_counters determinism across shard/thread layouts.
OTF_SMOKE=1 OTF_BENCH_DIR="$BUILD_DIR" "$BUILD_DIR"/bench/bench_population

echo "== replay / durable telemetry smoke (OTF_SMOKE=1) =="
# Supervised attack with the telemetry WAL attached, then a replay pass:
# exit status enforces clean recovery, zero drops and bit-identical
# confirmation verdicts (docs/ARCHITECTURE.md, durable telemetry).
OTF_SMOKE=1 OTF_BENCH_DIR="$BUILD_DIR" "$BUILD_DIR"/bench/bench_replay

echo "== offline replay of the just-written segment =="
# The CLI must reach the same verdict as the in-process replay above.
"$BUILD_DIR"/tools/otf_replay "$BUILD_DIR"/BENCH_replay.wal --quiet

if command -v python3 >/dev/null 2>&1; then
    echo "== validating BENCH_*.json =="
    for f in "$BUILD_DIR"/BENCH_fleet.json "$BUILD_DIR"/BENCH_scenarios.json \
             "$BUILD_DIR"/BENCH_stream.json "$BUILD_DIR"/BENCH_escalation.json \
             "$BUILD_DIR"/BENCH_population.json "$BUILD_DIR"/BENCH_replay.json; do
        python3 -m json.tool "$f" >/dev/null
        echo "ok: $f"
    done

    echo "== validating otf-stream-bench/3 schema =="
    # The stream bench must report the /3 schema: the generation axis
    # with all six adversarial models, and a streamed channel that took
    # the zero-copy window path (docs/BENCHMARKS.md).
    python3 - "$BUILD_DIR"/BENCH_stream.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "otf-stream-bench/3", doc["schema"]
models = [g["model"] for g in doc["generation"]]
expected = {"rtn", "bias_drift", "lockin", "fault", "entropy_collapse",
            "substitution"}
assert set(models) == expected and len(models) == 6, models
assert doc["zero_copy_windows"] == doc["windows"], (
    doc["zero_copy_windows"], doc["windows"])
assert doc["batch_sweep"], "batch_sweep must not be empty"
print("ok: otf-stream-bench/3 (%d generation models, %d zero-copy windows)"
      % (len(models), doc["zero_copy_windows"]))
EOF
fi
