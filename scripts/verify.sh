#!/usr/bin/env sh
# Tier-1 verify: configure, build, and run the full ctest suite, then the
# fleet-throughput smoke run (the word-lane/fleet subsystem must never
# bit-rot silently, so it runs explicitly even outside ctest).
# Usage: scripts/verify.sh [build-dir] [extra cmake args...]
set -eu

BUILD_DIR="${1:-build}"
[ "$#" -gt 0 ] && shift

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." "$@"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" -j "$JOBS" --output-on-failure

echo "== fleet bench smoke (OTF_SMOKE=1) =="
OTF_SMOKE=1 "$BUILD_DIR"/bench/bench_fleet_throughput
