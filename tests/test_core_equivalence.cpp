// The central correctness property of the paper's Table II: for any
// sequence, the HW counter values plus the integer software routines must
// reach the same accept/reject decision as the full-precision reference
// implementation at the same level of significance.
//
// Two tests have architecturally bounded deviations and are checked with
// adapted criteria: the runs test quantizes N_ones into stored-constant
// intervals (midpoint bounds can flip sequences within ~1 run count of the
// boundary), and the approximate-entropy test runs on the PWL statistic
// with a calibrated threshold (see critical_values.cpp), so it is checked
// statistically rather than per-sequence.
#include "core/design_config.hpp"
#include "core/monitor.hpp"
#include "nist/tests.hpp"
#include "trng/sources.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <tuple>

namespace {

using namespace otf;

constexpr double alpha = 0.01;

struct equiv_case {
    std::string source;
    std::uint64_t seed;
};

std::unique_ptr<trng::entropy_source> make_source(const equiv_case& c)
{
    if (c.source == "ideal") {
        return std::make_unique<trng::ideal_source>(c.seed);
    }
    if (c.source == "biased52") {
        return std::make_unique<trng::biased_source>(c.seed, 0.52);
    }
    if (c.source == "biased60") {
        return std::make_unique<trng::biased_source>(c.seed, 0.60);
    }
    if (c.source == "markov55") {
        return std::make_unique<trng::markov_source>(c.seed, 0.55);
    }
    if (c.source == "markov70") {
        return std::make_unique<trng::markov_source>(c.seed, 0.70);
    }
    throw std::invalid_argument("source");
}

class equivalence
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {
protected:
    void SetUp() override
    {
        cfg_ = core::paper_design(16, core::tier::high);
        const equiv_case c{std::get<0>(GetParam()),
                           static_cast<std::uint64_t>(
                               100 + std::get<1>(GetParam()))};
        seq_ = make_source(c)->generate(cfg_.n());

        hw::testing_block block(cfg_);
        block.run(seq_);
        const core::software_runner runner(
            cfg_, core::compute_critical_values(cfg_, alpha));
        sw16::soft_cpu cpu(16);
        result_ = runner.run(block.registers(), cpu);
    }

    // True when the reference P-value is so close to alpha that integer
    // rounding of the precomputed constant may legitimately flip the
    // decision.
    static bool borderline(double p_value)
    {
        return std::fabs(p_value - alpha) < 0.002;
    }

    const core::test_verdict& verdict(hw::test_id id) const
    {
        const core::test_verdict* v = result_.find(id);
        EXPECT_NE(v, nullptr);
        return *v;
    }

    hw::block_config cfg_;
    bit_sequence seq_;
    core::software_result result_;
};

TEST_P(equivalence, frequency_decision_matches_reference)
{
    const auto ref = nist::frequency_test(seq_);
    if (borderline(ref.p_value)) {
        GTEST_SKIP() << "P-value within rounding band of alpha";
    }
    EXPECT_EQ(verdict(hw::test_id::frequency).pass, ref.p_value >= alpha)
        << "P=" << ref.p_value;
}

TEST_P(equivalence, block_frequency_decision_matches_reference)
{
    const auto ref = nist::block_frequency_test(seq_, 4096);
    if (borderline(ref.p_value)) {
        GTEST_SKIP();
    }
    EXPECT_EQ(verdict(hw::test_id::block_frequency).pass,
              ref.p_value >= alpha)
        << "P=" << ref.p_value;
}

TEST_P(equivalence, runs_decision_matches_reference)
{
    const auto ref = nist::runs_test(seq_);
    const bool ref_pass = ref.applicable && ref.p_value >= alpha;
    if (ref.applicable && borderline(ref.p_value)) {
        GTEST_SKIP();
    }
    // Interval quantization: skip when the run count sits within 2 of the
    // exact bound (the midpoint table may disagree only there).
    const double n = static_cast<double>(seq_.size());
    const double pi = static_cast<double>(seq_.count_ones()) / n;
    const double center = 2.0 * n * pi * (1.0 - pi);
    const double c =
        2.0 * std::sqrt(2.0 * n) * pi * (1.0 - pi) * 1.8213863677;
    const double v = static_cast<double>(ref.v_n);
    if (std::fabs(v - (center - c)) < 2.0
        || std::fabs(v - (center + c)) < 2.0) {
        GTEST_SKIP() << "within interval-quantization band";
    }
    EXPECT_EQ(verdict(hw::test_id::runs).pass, ref_pass)
        << "P=" << ref.p_value;
}

TEST_P(equivalence, longest_run_decision_matches_reference)
{
    const auto ref = nist::longest_run_test(seq_, 128, 4, 9);
    if (borderline(ref.p_value)) {
        GTEST_SKIP();
    }
    EXPECT_EQ(verdict(hw::test_id::longest_run).pass, ref.p_value >= alpha)
        << "P=" << ref.p_value;
}

TEST_P(equivalence, non_overlapping_decision_matches_reference)
{
    const auto ref = nist::non_overlapping_template_test(
        seq_, cfg_.t7_template, 9, 8);
    if (borderline(ref.p_value)) {
        GTEST_SKIP();
    }
    EXPECT_EQ(verdict(hw::test_id::non_overlapping_template).pass,
              ref.p_value >= alpha)
        << "P=" << ref.p_value;
}

TEST_P(equivalence, overlapping_decision_matches_reference)
{
    const auto ref =
        nist::overlapping_template_test(seq_, 9, 1024, 5);
    if (borderline(ref.p_value)) {
        GTEST_SKIP();
    }
    EXPECT_EQ(verdict(hw::test_id::overlapping_template).pass,
              ref.p_value >= alpha)
        << "P=" << ref.p_value;
}

TEST_P(equivalence, serial_decision_matches_reference)
{
    const auto ref = nist::serial_test(seq_, 4);
    if (borderline(ref.p_value1) || borderline(ref.p_value2)) {
        GTEST_SKIP();
    }
    const bool ref_pass = ref.p_value1 >= alpha && ref.p_value2 >= alpha;
    EXPECT_EQ(verdict(hw::test_id::serial).pass, ref_pass)
        << "P1=" << ref.p_value1 << " P2=" << ref.p_value2;
}

TEST_P(equivalence, cusum_decision_matches_reference)
{
    const auto ref = nist::cumulative_sums_test(seq_);
    if (borderline(ref.p_forward) || borderline(ref.p_backward)) {
        GTEST_SKIP();
    }
    const bool ref_pass =
        ref.p_forward >= alpha && ref.p_backward >= alpha;
    EXPECT_EQ(verdict(hw::test_id::cumulative_sums).pass, ref_pass)
        << "Pf=" << ref.p_forward << " Pr=" << ref.p_backward;
}

TEST_P(equivalence, apen_rejects_exactly_when_statistic_below_bound)
{
    // Per-sequence self-consistency of the PWL path (the statistical
    // behaviour is covered in test_core_monitor).
    const auto& v = verdict(hw::test_id::approximate_entropy);
    EXPECT_EQ(v.pass, v.statistic >= v.bound);
}

TEST_P(equivalence, statistics_are_exact_integers_of_reference)
{
    // Spot-check the integer statistics against their float counterparts.
    const auto ref_bf = nist::block_frequency_test(seq_, 4096);
    EXPECT_NEAR(
        static_cast<double>(
            verdict(hw::test_id::block_frequency).statistic),
        4096.0 * ref_bf.chi_squared, 1e-6);

    const auto ref_serial = nist::serial_test(seq_, 4);
    EXPECT_NEAR(static_cast<double>(verdict(hw::test_id::serial).statistic),
                65536.0 * ref_serial.del1, 1e-3);

    const auto ref_cusum = nist::cumulative_sums_test(seq_);
    EXPECT_EQ(verdict(hw::test_id::cumulative_sums).statistic,
              std::max(ref_cusum.z_forward, ref_cusum.z_backward));
}

INSTANTIATE_TEST_SUITE_P(
    sources_and_seeds, equivalence,
    ::testing::Combine(::testing::Values("ideal", "biased52", "biased60",
                                         "markov55", "markov70"),
                       ::testing::Range(0, 8)));

} // namespace
