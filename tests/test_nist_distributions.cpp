// Tests of the exact combinatorial distributions: the longest-run
// recurrence against the NIST-tabulated category probabilities and against
// brute-force enumeration; the overlapping-template automaton DP against
// the published pi table and Monte-Carlo; aperiodic template generation.
#include "nist/distributions.hpp"
#include "trng/xoshiro.hpp"

#include <algorithm>
#include <cstdint>
#include <gtest/gtest.h>
#include <numeric>
#include <string>
#include <vector>

namespace {

using namespace otf;
using namespace otf::nist;

TEST(longest_run_probs, matches_nist_table_m8)
{
    // SP 800-22 section 3.4, M = 8, categories {<=1, 2, 3, >=4}.
    const auto pi = longest_run_category_probs(8, 1, 4);
    ASSERT_EQ(pi.size(), 4u);
    EXPECT_NEAR(pi[0], 0.2148, 5e-5);
    EXPECT_NEAR(pi[1], 0.3672, 5e-5);
    EXPECT_NEAR(pi[2], 0.2305, 5e-5);
    EXPECT_NEAR(pi[3], 0.1875, 5e-5);
}

TEST(longest_run_probs, matches_nist_table_m128)
{
    const auto pi = longest_run_category_probs(128, 4, 9);
    ASSERT_EQ(pi.size(), 6u);
    EXPECT_NEAR(pi[0], 0.1174, 5e-4);
    EXPECT_NEAR(pi[1], 0.2430, 5e-4);
    EXPECT_NEAR(pi[2], 0.2493, 5e-4);
    EXPECT_NEAR(pi[3], 0.1752, 5e-4);
    EXPECT_NEAR(pi[4], 0.1027, 5e-4);
    EXPECT_NEAR(pi[5], 0.1124, 5e-4);
}

TEST(longest_run_probs, sums_to_one_for_arbitrary_m)
{
    for (const unsigned m : {8u, 64u, 128u, 1024u, 8192u}) {
        const auto cats = recommended_longest_run_categories(m);
        const auto pi = longest_run_category_probs(m, cats.v_lo, cats.v_hi);
        const double total = std::accumulate(pi.begin(), pi.end(), 0.0);
        EXPECT_NEAR(total, 1.0, 1e-12) << "M=" << m;
        for (const double p : pi) {
            EXPECT_GT(p, 0.0) << "M=" << m;
        }
    }
}

TEST(longest_run_probs, matches_brute_force_enumeration)
{
    // Enumerate all 2^12 strings of length 12 and bin their longest runs.
    const unsigned length = 12;
    std::vector<unsigned> histogram(length + 1, 0);
    for (unsigned v = 0; v < (1u << length); ++v) {
        unsigned longest = 0;
        unsigned current = 0;
        for (unsigned i = 0; i < length; ++i) {
            if ((v >> i) & 1u) {
                ++current;
                longest = std::max(longest, current);
            } else {
                current = 0;
            }
        }
        ++histogram[longest];
    }
    for (unsigned k = 0; k <= length; ++k) {
        unsigned at_most = 0;
        for (unsigned j = 0; j <= k; ++j) {
            at_most += histogram[j];
        }
        const double expected =
            static_cast<double>(at_most) / (1u << length);
        EXPECT_NEAR(prob_longest_run_at_most(length, k), expected, 1e-12)
            << "k=" << k;
    }
}

TEST(overlapping_probs, reproduces_nist_published_pi)
{
    // SP 800-22 section 3.8 tabulates pi for m = 9, M = 1032, all-ones
    // template: {0.364091, 0.185659, 0.139381, 0.100571, 0.070432,
    // 0.139865}.  The automaton DP reproduces all six digits.
    const auto pi =
        overlapping_template_category_probs((1u << 9) - 1, 9, 1032, 5);
    ASSERT_EQ(pi.size(), 6u);
    EXPECT_NEAR(pi[0], 0.364091, 1e-6);
    EXPECT_NEAR(pi[1], 0.185659, 1e-6);
    EXPECT_NEAR(pi[2], 0.139381, 1e-6);
    EXPECT_NEAR(pi[3], 0.100571, 1e-6);
    EXPECT_NEAR(pi[4], 0.070432, 1e-6);
    EXPECT_NEAR(pi[5], 0.139865, 1e-6);
}

TEST(overlapping_probs, sums_to_one)
{
    for (const unsigned block : {64u, 512u, 1024u}) {
        const auto pi = overlapping_template_category_probs(
            (1u << 9) - 1, 9, block, 5);
        EXPECT_NEAR(std::accumulate(pi.begin(), pi.end(), 0.0), 1.0, 1e-12);
    }
}

TEST(overlapping_probs, matches_monte_carlo_for_short_blocks)
{
    // 16-bit blocks, template 101: enumerate all 65536 blocks exactly.
    const std::uint32_t templ = 0b101;
    const unsigned m = 3;
    const unsigned block = 16;
    std::vector<double> histogram(4, 0.0);
    for (std::uint32_t v = 0; v < (1u << block); ++v) {
        unsigned hits = 0;
        for (unsigned i = 0; i + m <= block; ++i) {
            const std::uint32_t w = (v >> (block - m - i))
                & ((1u << m) - 1u);
            if (w == templ) {
                ++hits;
            }
        }
        ++histogram[std::min<unsigned>(hits, 3u)];
    }
    for (auto& h : histogram) {
        h /= static_cast<double>(1u << block);
    }
    const auto pi = overlapping_template_category_probs(templ, m, block, 3);
    ASSERT_EQ(pi.size(), 4u);
    for (unsigned c = 0; c < 4; ++c) {
        EXPECT_NEAR(pi[c], histogram[c], 1e-12) << "category " << c;
    }
}

TEST(non_overlapping_moments, matches_nist_example)
{
    // 2.7.4: m = 3, M = 10: mu = 1, sigma^2 = 0.46875.
    const auto mv = non_overlapping_template_moments(3, 10);
    EXPECT_NEAR(mv.mean, 1.0, 1e-12);
    EXPECT_NEAR(mv.variance, 0.46875, 1e-12);
}

TEST(aperiodic_templates, borders_detected)
{
    EXPECT_TRUE(is_aperiodic_template(0b000000001u, 9));
    EXPECT_TRUE(is_aperiodic_template(0b011111111u, 9)); // 0111...11
    EXPECT_FALSE(is_aperiodic_template(0b101010101u, 9)); // period 2
    EXPECT_FALSE(is_aperiodic_template((1u << 9) - 1u, 9)); // all ones
    EXPECT_FALSE(is_aperiodic_template(0u, 9));             // all zeros
}

TEST(aperiodic_templates, matches_independent_border_check)
{
    // Cross-check against a string-based border test for every 7-bit value.
    for (std::uint32_t t = 0; t < (1u << 7); ++t) {
        std::string s(7, '0');
        for (unsigned i = 0; i < 7; ++i) {
            s[i] = ((t >> (6 - i)) & 1u) ? '1' : '0';
        }
        bool has_border = false;
        for (unsigned j = 1; j < 7; ++j) {
            if (s.substr(0, 7 - j) == s.substr(j)) {
                has_border = true;
                break;
            }
        }
        EXPECT_EQ(is_aperiodic_template(t, 7), !has_border) << "t=" << t;
    }
}

TEST(aperiodic_templates, nist_count_for_m9)
{
    // SP 800-22 appendix: there are 148 aperiodic templates of length 9
    // listed for the non-overlapping test (the enumeration counts both
    // orientations).
    const auto templates = aperiodic_templates(9);
    EXPECT_EQ(templates.size(), 148u);
    for (const std::uint32_t t : templates) {
        EXPECT_TRUE(is_aperiodic_template(t, 9));
    }
}

} // namespace
