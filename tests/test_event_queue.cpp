// Tests of the lock-free bounded MPMC event queue behind the population
// aggregator: FIFO order, full/empty rejection with stall counters, index
// wraparound, the close/drained end-of-stream protocol, and a
// multi-producer stress run checking per-producer order survives
// contention.
#include "base/event_queue.hpp"

#include <cstdint>
#include <gtest/gtest.h>
#include <stdexcept>
#include <thread>
#include <vector>

namespace {

using otf::base::event_queue;

struct event {
    std::uint32_t producer = 0;
    std::uint64_t seq = 0;
};

TEST(event_queue, capacity_rounds_up_to_power_of_two)
{
    // Floor of 2: the lap protocol cannot tell "pending" from "free on
    // the next lap" with a single cell.
    EXPECT_EQ(event_queue<event>(1).capacity(), 2u);
    EXPECT_EQ(event_queue<event>(2).capacity(), 2u);
    EXPECT_EQ(event_queue<event>(5).capacity(), 8u);
    EXPECT_EQ(event_queue<event>(1024).capacity(), 1024u);
    EXPECT_THROW(event_queue<event>(0), std::invalid_argument);
}

TEST(event_queue, fifo_order_single_threaded)
{
    event_queue<event> q(8);
    for (std::uint64_t i = 0; i < 8; ++i) {
        ASSERT_TRUE(q.try_push({0, i}));
    }
    event e;
    for (std::uint64_t i = 0; i < 8; ++i) {
        ASSERT_TRUE(q.try_pop(e));
        EXPECT_EQ(e.seq, i);
    }
    EXPECT_FALSE(q.try_pop(e)) << "empty queue must reject pops";
}

TEST(event_queue, full_and_empty_rejections_are_counted)
{
    event_queue<event> q(2);
    EXPECT_TRUE(q.try_push({0, 0}));
    EXPECT_TRUE(q.try_push({0, 1}));
    EXPECT_FALSE(q.try_push({0, 2})) << "full queue must reject pushes";
    EXPECT_FALSE(q.try_push({0, 3}));
    EXPECT_EQ(q.push_stalls(), 2u);
    event e;
    EXPECT_TRUE(q.try_pop(e));
    EXPECT_TRUE(q.try_pop(e));
    EXPECT_FALSE(q.try_pop(e));
    EXPECT_EQ(q.pop_stalls(), 1u);
    EXPECT_EQ(q.total_pushed(), 2u);
    EXPECT_EQ(q.total_popped(), 2u);
}

TEST(event_queue, wraparound_many_laps)
{
    // A small queue cycled far past its capacity: the per-cell lap
    // sequencing must keep values intact across every wrap.
    event_queue<event> q(4);
    event e;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        ASSERT_TRUE(q.try_push({0, i}));
        ASSERT_TRUE(q.try_pop(e));
        EXPECT_EQ(e.seq, i);
    }
    EXPECT_EQ(q.total_pushed(), 1000u);
    EXPECT_LE(q.max_occupancy(), q.capacity());
}

TEST(event_queue, close_then_drain)
{
    event_queue<event> q(4);
    EXPECT_FALSE(q.closed());
    EXPECT_FALSE(q.drained()) << "an open queue is never drained";
    ASSERT_TRUE(q.try_push({0, 7}));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.drained()) << "closed but still holding an event";
    event e;
    ASSERT_TRUE(q.try_pop(e));
    EXPECT_EQ(e.seq, 7u);
    EXPECT_TRUE(q.drained()) << "closed and empty";
}

TEST(event_queue, minimum_capacity_survives_contention)
{
    // Regression: a single-cell queue wedged -- the consumer's deferred
    // seq release collided with a producer's next-lap claim.  At the
    // two-cell floor the stamps stay distinct, so a saturated queue must
    // keep making progress.
    event_queue<event> q(1);
    ASSERT_EQ(q.capacity(), 2u);
    std::uint64_t sum = 0;
    std::thread consumer([&] {
        event e;
        for (;;) {
            if (!q.try_pop(e)) {
                if (q.drained()) {
                    return;
                }
                std::this_thread::yield();
                continue;
            }
            sum += e.seq;
        }
    });
    constexpr std::uint64_t kEach = 2000;
    std::vector<std::thread> producers;
    for (unsigned p = 0; p < 2; ++p) {
        producers.emplace_back([&, p] {
            for (std::uint64_t i = 1; i <= kEach; ++i) {
                while (!q.try_push({p, i})) {
                    std::this_thread::yield();
                }
            }
        });
    }
    for (std::thread& t : producers) {
        t.join();
    }
    q.close();
    consumer.join();
    EXPECT_EQ(sum, 2 * kEach * (kEach + 1) / 2);
    EXPECT_EQ(q.total_popped(), 2 * kEach);
}

TEST(event_queue, multi_producer_preserves_per_producer_order)
{
    // The population layer's actual shape: many shard workers pushing,
    // one aggregator popping.  Producers contend for slots, so global
    // order is unspecified -- but each producer's own events must arrive
    // in the order it pushed them, exactly once.
    constexpr unsigned kProducers = 4;
    constexpr std::uint64_t kPerProducer = 5000;
    event_queue<event> q(64);

    std::vector<std::vector<std::uint64_t>> seen(kProducers);
    std::thread consumer([&] {
        event e;
        for (;;) {
            if (!q.try_pop(e)) {
                if (q.drained()) {
                    return;
                }
                std::this_thread::yield();
                continue;
            }
            seen[e.producer].push_back(e.seq);
        }
    });
    std::vector<std::thread> producers;
    for (unsigned p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                while (!q.try_push({p, i})) {
                    std::this_thread::yield();
                }
            }
        });
    }
    for (std::thread& t : producers) {
        t.join();
    }
    q.close();
    consumer.join();

    for (unsigned p = 0; p < kProducers; ++p) {
        ASSERT_EQ(seen[p].size(), kPerProducer)
            << "producer " << p << " lost or duplicated events";
        for (std::uint64_t i = 0; i < kPerProducer; ++i) {
            ASSERT_EQ(seen[p][i], i)
                << "producer " << p << " events reordered at " << i;
        }
    }
    EXPECT_EQ(q.total_pushed(), kProducers * kPerProducer);
    EXPECT_EQ(q.total_popped(), kProducers * kPerProducer);
    EXPECT_LE(q.max_occupancy(), q.capacity());
    EXPECT_TRUE(q.drained());
}

} // namespace
