// Tests of the adversarial source-model library: word-lane vs per-bit
// bit-exactness for every model (including ragged interleavings and
// stacked decorators), statistical parameter fidelity, severity
// semantics and parameter validation.
#include "trng/source_model.hpp"
#include "trng/sources.hpp"

#include "support/fixed_seed.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <functional>
#include <gtest/gtest.h>
#include <memory>
#include <stdexcept>
#include <vector>

namespace {

using namespace otf;
using namespace otf::trng;
using test::fixture_seed;

using model_builder =
    std::function<std::unique_ptr<source_model>(std::uint64_t seed)>;

std::unique_ptr<entropy_source> healthy(std::uint64_t seed)
{
    return std::make_unique<ideal_source>(seed);
}

/// Every model in the library, built over an ideal inner source.
std::vector<std::pair<std::string, model_builder>> all_models()
{
    return {
        {"rtn",
         [](std::uint64_t s) {
             return std::make_unique<rtn_source>(healthy(s), s + 1);
         }},
        {"bias-drift",
         [](std::uint64_t s) {
             return std::make_unique<bias_drift_source>(healthy(s), s + 1);
         }},
        {"lockin",
         [](std::uint64_t s) {
             return std::make_unique<lockin_source>(healthy(s), s + 1);
         }},
        {"fault",
         [](std::uint64_t s) {
             return std::make_unique<fault_source>(healthy(s), s + 1);
         }},
        {"sram-collapse",
         [](std::uint64_t s) {
             return std::make_unique<entropy_collapse_source>(healthy(s),
                                                              s + 1);
         }},
        {"substitution",
         [](std::uint64_t s) {
             return std::make_unique<substitution_source>(healthy(s),
                                                          s + 1);
         }},
        {"stacked rtn<bias-drift>",
         [](std::uint64_t s) {
             return std::make_unique<rtn_source>(
                 std::make_unique<bias_drift_source>(healthy(s), s + 1),
                 s + 2);
         }},
    };
}

double ones_fraction(const bit_sequence& seq)
{
    return static_cast<double>(seq.count_ones())
        / static_cast<double>(seq.size());
}

TEST(source_models, word_lane_is_bit_exact_with_per_bit_lane)
{
    // The base-class contract: fill_words and next_bit drain the same
    // word stream, so any pure split must agree bit for bit.
    for (const auto& [name, build] : all_models()) {
        auto via_bits = build(fixture_seed(1));
        auto via_words = build(fixture_seed(1));
        const bit_sequence seq = via_bits->generate(4096);
        const std::vector<std::uint64_t> words =
            via_words->generate_words(4096 / 64);
        EXPECT_EQ(seq, bit_sequence::from_words(words, 4096)) << name;
    }
}

TEST(source_models, ragged_interleaving_is_bit_exact)
{
    // Mixed next_bit / fill_words drains with ragged sizes exercise the
    // splice paths (partial output buffer ahead of a bulk fill).
    const std::size_t chunks[] = {1, 7, 64, 3, 128, 61, 192, 5};
    for (const auto& [name, build] : all_models()) {
        auto oracle = build(fixture_seed(2));
        auto ragged = build(fixture_seed(2));
        bit_sequence want;
        bit_sequence got;
        std::vector<std::uint64_t> words; // reused across chunks
        for (const std::size_t bits : chunks) {
            for (std::size_t i = 0; i < bits; ++i) {
                want.push_back(oracle->next_bit());
            }
            if (bits % 64 == 0) {
                ragged->generate_words(words, bits / 64);
                const auto part = bit_sequence::from_words(words, bits);
                for (std::size_t i = 0; i < part.size(); ++i) {
                    got.push_back(part[i]);
                }
            } else {
                for (std::size_t i = 0; i < bits; ++i) {
                    got.push_back(ragged->next_bit());
                }
            }
        }
        EXPECT_EQ(want, got) << name;
    }
}

TEST(source_models, reproducible_for_equal_seeds)
{
    for (const auto& [name, build] : all_models()) {
        auto a = build(fixture_seed(3));
        auto b = build(fixture_seed(3));
        EXPECT_EQ(a->generate(2048), b->generate(2048)) << name;
    }
}

TEST(source_models, severity_zero_is_transparent)
{
    // At severity 0 every model must pass the inner stream through
    // unchanged (the healthy operating point of a scheduled scenario).
    for (const auto& [name, build] : all_models()) {
        auto model = build(fixture_seed(4));
        model->set_severity(0.0);
        ideal_source reference(fixture_seed(4));
        if (name.rfind("stacked", 0) == 0) {
            // A stack is only transparent if every layer is; the builder
            // gives us the top layer, so drive the inner one too.
            auto* inner_model =
                dynamic_cast<source_model*>(&model->inner());
            ASSERT_NE(inner_model, nullptr);
            inner_model->set_severity(0.0);
        }
        EXPECT_EQ(model->generate(4096), reference.generate(4096)) << name;
    }
}

TEST(source_models, severity_is_validated_and_reported)
{
    auto model = std::make_unique<lockin_source>(healthy(1), 2);
    EXPECT_DOUBLE_EQ(model->severity(), 1.0);
    model->set_severity(0.25);
    EXPECT_DOUBLE_EQ(model->severity(), 0.25);
    EXPECT_THROW(model->set_severity(-0.1), std::invalid_argument);
    EXPECT_THROW(model->set_severity(1.5), std::invalid_argument);
}

TEST(source_models, null_inner_is_rejected)
{
    EXPECT_THROW(rtn_source(nullptr, 1), std::invalid_argument);
}

TEST(rtn_model, rejects_sub_bit_healthy_dwell)
{
    // dwell_on * (1 - duty) / duty < 1 would make geometric_dwell throw
    // mid-stream; the constructor must reject it up front.
    EXPECT_THROW(
        rtn_source(healthy(1), 2, {.dwell_on = 2.0, .duty = 0.9}),
        std::invalid_argument);
}

TEST(bernoulli_mask_helper, empirical_density_matches_q)
{
    xoshiro256ss rng(fixture_seed(5));
    for (const unsigned q : {0u, 32u, 128u, 224u, 256u}) {
        std::size_t ones = 0;
        const std::size_t words = 4096;
        for (std::size_t i = 0; i < words; ++i) {
            ones += static_cast<std::size_t>(
                std::popcount(bernoulli_mask(rng, q)));
        }
        const double got =
            static_cast<double>(ones) / (64.0 * static_cast<double>(words));
        EXPECT_NEAR(got, q / 256.0, 0.01) << "q=" << q;
    }
}

TEST(rtn_model, bursts_pin_the_output_level)
{
    rtn_source src(healthy(fixture_seed(6)), fixture_seed(7),
                   {.dwell_on = 128.0, .duty = 0.5, .level = true});
    const bit_sequence seq = src.generate(1 << 16);
    // Half the stream sits in all-ones bursts: strong excess of ones and
    // a longest run far beyond anything a healthy source produces.
    EXPECT_GT(ones_fraction(seq), 0.65);
    unsigned longest = 0;
    unsigned current = 0;
    for (std::size_t i = 0; i < seq.size(); ++i) {
        current = seq[i] ? current + 1 : 0;
        longest = std::max(longest, current);
    }
    EXPECT_GE(longest, 100u);
}

TEST(rtn_model, severity_scales_the_duty_cycle)
{
    rtn_source mild(healthy(fixture_seed(8)), fixture_seed(9));
    mild.set_severity(0.1);
    rtn_source harsh(healthy(fixture_seed(8)), fixture_seed(9));
    const double p_mild = ones_fraction(mild.generate(1 << 16));
    const double p_harsh = ones_fraction(harsh.generate(1 << 16));
    EXPECT_LT(p_mild, 0.57);
    EXPECT_GT(p_harsh, p_mild + 0.1);
}

TEST(bias_drift_model, walk_drifts_the_marginal_outwards)
{
    bias_drift_source src(healthy(fixture_seed(10)), fixture_seed(11));
    // Early stream: walk near 0, marginal near 1/2.
    const double early = ones_fraction(src.generate(1 << 14));
    // Skip ahead: the outward-drifting walk saturates at max_shift_q.
    (void)src.generate(1 << 20);
    const double late = ones_fraction(src.generate(1 << 16));
    EXPECT_NEAR(early, 0.5, 0.03);
    EXPECT_GT(late, 0.58);
    EXPECT_NEAR(late, 0.5 + src.current_shift(), 0.02);
}

TEST(bias_drift_model, rejects_bad_parameters)
{
    EXPECT_THROW(bias_drift_source(healthy(1), 2, {.step_bits = 100}),
                 std::invalid_argument);
    EXPECT_THROW(bias_drift_source(healthy(1), 2, {.max_shift_q = 300}),
                 std::invalid_argument);
    EXPECT_THROW(
        bias_drift_source(healthy(1), 2, {.p_out = 0.7, .p_back = 0.7}),
        std::invalid_argument);
}

TEST(lockin_model, full_lock_reproduces_the_pattern)
{
    lockin_source src(healthy(fixture_seed(12)), fixture_seed(13),
                      bit_sequence::from_string("01"));
    EXPECT_EQ(src.generate(8).to_string(), "01010101");
}

TEST(lockin_model, partial_lock_raises_the_transition_rate)
{
    lockin_source src(healthy(fixture_seed(14)), fixture_seed(15));
    src.set_severity(0.8);
    const bit_sequence seq = src.generate(1 << 15);
    std::size_t transitions = 0;
    for (std::size_t i = 1; i < seq.size(); ++i) {
        transitions += seq[i] != seq[i - 1] ? 1 : 0;
    }
    const double rate =
        static_cast<double>(transitions) / static_cast<double>(seq.size());
    // 0.8 lock on "01": both bits locked always alternate (0.64), mixed
    // pairs are fair -- P[transition] = 0.64 + 0.36 * 0.5 = 0.82.
    EXPECT_NEAR(rate, 0.82, 0.02);
    EXPECT_THROW(lockin_source(healthy(1), 2, bit_sequence{}),
                 std::invalid_argument);
}

TEST(fault_model, stuck_bits_shift_the_marginal)
{
    fault_source src(healthy(fixture_seed(16)), fixture_seed(17),
                     {.stuck_prob = 0.5, .stuck_value = true,
                      .dropout_prob = 0.0});
    // P[1] = 0.5 stuck + 0.5 * 0.5 fair = 0.75.
    EXPECT_NEAR(ones_fraction(src.generate(1 << 16)), 0.75, 0.01);
}

TEST(fault_model, dropout_repeats_the_previous_bit)
{
    fault_source src(healthy(fixture_seed(18)), fixture_seed(19),
                     {.stuck_prob = 0.0, .dropout_prob = 0.5});
    const bit_sequence seq = src.generate(1 << 16);
    std::size_t repeats = 0;
    for (std::size_t i = 1; i < seq.size(); ++i) {
        repeats += seq[i] == seq[i - 1] ? 1 : 0;
    }
    // P[repeat] = 0.5 dropout + 0.5 * 0.5 fair = 0.75; marginal unmoved.
    EXPECT_NEAR(static_cast<double>(repeats)
                    / static_cast<double>(seq.size() - 1),
                0.75, 0.01);
    EXPECT_NEAR(ones_fraction(seq), 0.5, 0.02);
    EXPECT_THROW(fault_source(healthy(1), 2, {.stuck_prob = 1.5}),
                 std::invalid_argument);
}

TEST(collapse_model, full_collapse_is_the_periodic_fingerprint)
{
    entropy_collapse_source src(healthy(fixture_seed(20)), fixture_seed(21),
                                {.fingerprint_bits = 256});
    const bit_sequence seq = src.generate(1024);
    // severity 1, max_fraction 1: the output is the fingerprint looped.
    for (std::size_t i = 256; i < seq.size(); ++i) {
        ASSERT_EQ(seq[i], seq[i - 256]) << "position " << i;
    }
    EXPECT_THROW(entropy_collapse_source(healthy(1), 2,
                                         {.fingerprint_bits = 100}),
                 std::invalid_argument);
}

TEST(collapse_model, skew_biases_the_collapsed_cells)
{
    entropy_collapse_source src(healthy(fixture_seed(22)), fixture_seed(23),
                                {.fingerprint_bits = 4096,
                                 .cell_one_prob = 0.8});
    EXPECT_NEAR(ones_fraction(src.generate(1 << 15)), 0.8, 0.03);
}

TEST(substitution_model, full_attack_is_the_looped_block)
{
    substitution_source src(healthy(fixture_seed(24)), fixture_seed(25),
                            {.period_bits = 128});
    const bit_sequence seq = src.generate(1024);
    for (std::size_t i = 128; i < seq.size(); ++i) {
        ASSERT_EQ(seq[i], seq[i - 128]) << "position " << i;
    }
    // The substitute is balanced -- only its periodicity is wrong.
    EXPECT_NEAR(ones_fraction(seq), 0.5, 0.1);
    EXPECT_THROW(substitution_source(healthy(1), 2, {.period_bits = 96}),
                 std::invalid_argument);
}

} // namespace
