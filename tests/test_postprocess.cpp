// Tests of the post-processing models and of the lesson they carry: the
// on-the-fly tests must watch the RAW source, because conditioning makes
// broken entropy look statistically clean.
#include "core/design_config.hpp"
#include "core/monitor.hpp"
#include "nist/extended_tests.hpp"
#include "nist/tests.hpp"
#include "trng/postprocess.hpp"
#include "trng/sources.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <memory>

namespace {

using namespace otf;

TEST(von_neumann, removes_bias_exactly)
{
    trng::von_neumann_source vn(
        std::make_unique<trng::biased_source>(1, 0.7));
    const bit_sequence out = vn.generate(20000);
    const double p = static_cast<double>(out.count_ones()) / out.size();
    EXPECT_NEAR(p, 0.5, 0.015) << "independent biased bits come out fair";
}

TEST(von_neumann, yield_matches_theory)
{
    // Acceptance probability per pair is 2 p (1 - p); at p = 0.7 the
    // corrector consumes ~ 1 / 0.21 / ... = 2/(2 * 0.21) raw bits per
    // output bit.
    trng::von_neumann_source vn(
        std::make_unique<trng::biased_source>(2, 0.7));
    const std::size_t out_bits = 10000;
    (void)vn.generate(out_bits);
    const double raw_per_out =
        static_cast<double>(vn.raw_bits_consumed()) / out_bits;
    EXPECT_NEAR(raw_per_out, 2.0 / (2.0 * 0.7 * 0.3), 0.3);
}

TEST(von_neumann, fair_input_passes_monitor)
{
    auto cfg = core::paper_design(16, core::tier::light);
    core::monitor mon(cfg, 0.01);
    trng::von_neumann_source vn(
        std::make_unique<trng::biased_source>(3, 0.6));
    const auto rep = mon.test_window(vn);
    const auto* freq = rep.software.find(hw::test_id::frequency);
    ASSERT_NE(freq, nullptr);
    EXPECT_TRUE(freq->pass)
        << "the corrected stream is unbiased -- which is exactly why the "
           "tests must tap the raw side";
}

TEST(xor_decimator, shrinks_bias_per_piling_up_lemma)
{
    // P[xor of k bits = 1] = (1 - (1 - 2p)^k) / 2.  At p = 0.6:
    // k = 4 -> 0.4992 (bias 8e-4); k = 2 -> 0.48 (bias 0.02 downward).
    trng::xor_decimator_source x4(
        std::make_unique<trng::biased_source>(4, 0.6), 4);
    const bit_sequence out = x4.generate(200000);
    const double p = static_cast<double>(out.count_ones()) / out.size();
    EXPECT_NEAR(p, 0.4992, 0.005);

    trng::xor_decimator_source x2(
        std::make_unique<trng::biased_source>(4, 0.6), 2);
    const bit_sequence out2 = x2.generate(200000);
    const double p2 = static_cast<double>(out2.count_ones()) / out2.size();
    EXPECT_NEAR(p2, 0.48, 0.005);
}

TEST(xor_decimator, rejects_degenerate_factor)
{
    EXPECT_THROW(trng::xor_decimator_source(
                     std::make_unique<trng::ideal_source>(1), 1),
                 std::invalid_argument);
}

TEST(lfsr_whitener, dead_source_passes_the_online_battery)
{
    // The cautionary tale: a completely dead source behind a whitener
    // passes all nine on-the-fly tests.
    auto cfg = core::paper_design(16, core::tier::high);
    core::monitor mon(cfg, 0.01);
    trng::lfsr_whitener_source masked(
        std::make_unique<trng::stuck_source>(true));
    const auto rep = mon.test_window(masked);
    unsigned failures = 0;
    for (const auto& v : rep.software.verdicts) {
        failures += v.pass ? 0 : 1;
    }
    EXPECT_LE(failures, 1u)
        << "counting-based tests cannot see through the LFSR";
}

TEST(lfsr_whitener, dead_source_caught_by_linear_complexity_offline)
{
    trng::lfsr_whitener_source masked(
        std::make_unique<trng::stuck_source>(true));
    const bit_sequence seq = masked.generate(100000);
    const auto r = nist::linear_complexity_test(seq, 500);
    EXPECT_LT(r.p_value, 1e-12)
        << "a 32-bit LFSR has complexity ~32 in every 500-bit block";
}

TEST(lfsr_whitener, healthy_source_stays_healthy)
{
    trng::lfsr_whitener_source whitened(
        std::make_unique<trng::ideal_source>(8));
    const bit_sequence seq = whitened.generate(65536);
    EXPECT_GT(nist::frequency_test(seq).p_value, 1e-4);
    EXPECT_GT(nist::runs_test(seq).p_value, 1e-4);
}

TEST(postprocess, null_sources_rejected)
{
    EXPECT_THROW(trng::von_neumann_source(nullptr), std::invalid_argument);
    EXPECT_THROW(trng::lfsr_whitener_source(nullptr),
                 std::invalid_argument);
}

TEST(postprocess, raw_vs_conditioned_monitoring_placement)
{
    // The design rule in one test: the same defective device fails when
    // the monitor taps the raw signal and passes when it taps the
    // conditioned signal.
    auto cfg = core::paper_design(16, core::tier::light);

    core::monitor raw_monitor(cfg, 0.01);
    trng::biased_source raw(11, 0.6);
    EXPECT_FALSE(raw_monitor.test_window(raw).software.all_pass);

    core::monitor cooked_monitor(cfg, 0.01);
    trng::xor_decimator_source cooked(
        std::make_unique<trng::biased_source>(11, 0.6), 4);
    EXPECT_TRUE(cooked_monitor.test_window(cooked).software.all_pass);
}

} // namespace
