// Known-answer tests against the worked examples of NIST SP 800-22 rev1a
// (sections 2.1 - 2.15).  The running 100-bit example is the binary
// expansion of pi (including the integer bits "11"); the per-test small
// examples are quoted from the respective example subsections.
//
// Where this implementation deliberately deviates from a worked example
// (exact category probabilities instead of the doc's rounded or asymptotic
// tables), the test asserts the implementation's full-precision value and
// the comment records the doc's number and the reason for the difference.
#include "nist/extended_tests.hpp"
#include "nist/tests.hpp"

#include <gtest/gtest.h>

namespace {

using namespace otf;
using namespace otf::nist;

const char* const pi_100 =
    "11001001000011111101101010100010001000010110100011"
    "00001000110100110001001100011001100010100010111000";

bit_sequence pi_bits()
{
    return bit_sequence::from_string(pi_100);
}

TEST(frequency_kat, small_example)
{
    // SP 800-22 2.1.4: eps = 1011010101, S = 2, P = 0.527089.
    const auto r = frequency_test(bit_sequence::from_string("1011010101"));
    EXPECT_EQ(r.s_n, 2);
    EXPECT_NEAR(r.p_value, 0.527089, 1e-6);
}

TEST(frequency_kat, pi_100)
{
    // SP 800-22 2.1.8: S = -16, P = 0.109599.
    const auto r = frequency_test(pi_bits());
    EXPECT_EQ(r.s_n, -16);
    EXPECT_NEAR(r.p_value, 0.109599, 1e-6);
}

TEST(block_frequency_kat, small_example)
{
    // 2.2.4: eps = 0110011010, M = 3: chi^2 = 1, P = 0.801252.
    const auto r =
        block_frequency_test(bit_sequence::from_string("0110011010"), 3);
    EXPECT_EQ(r.block_count, 3u);
    EXPECT_NEAR(r.chi_squared, 1.0, 1e-12);
    EXPECT_NEAR(r.p_value, 0.801252, 1e-6);
}

TEST(block_frequency_kat, pi_100)
{
    // 2.2.8: M = 10, chi^2 = 7.2, P = 0.706438.
    const auto r = block_frequency_test(pi_bits(), 10);
    EXPECT_NEAR(r.chi_squared, 7.2, 1e-12);
    EXPECT_NEAR(r.p_value, 0.706438, 1e-6);
}

TEST(runs_kat, small_example)
{
    // 2.3.4: eps = 1001101011, V = 7, P = 0.147232.
    const auto r = runs_test(bit_sequence::from_string("1001101011"));
    EXPECT_TRUE(r.applicable);
    EXPECT_EQ(r.v_n, 7u);
    EXPECT_NEAR(r.p_value, 0.147232, 1e-6);
}

TEST(runs_kat, pi_100)
{
    // 2.3.8: V = 52, P = 0.500798.
    const auto r = runs_test(pi_bits());
    EXPECT_EQ(r.v_n, 52u);
    EXPECT_NEAR(r.p_value, 0.500798, 1e-6);
}

TEST(runs_kat, inapplicable_when_frequency_fails)
{
    // All-ones: pi = 1, far beyond tau; the test reports failure directly.
    const auto r = runs_test(bit_sequence(100, true));
    EXPECT_FALSE(r.applicable);
    EXPECT_EQ(r.p_value, 0.0);
}

TEST(longest_run_kat, nist_128_bit_example)
{
    // 2.4.8: the 128-bit example, M = 8: nu = {4, 9, 3, 0},
    // chi^2 = 4.882457, P = 0.180609.
    const char* const eps =
        "11001100000101010110110001001100111000000000001001"
        "00110101010001000100111101011010000000110101111100"
        "1100111001101101100010110010";
    const auto r = longest_run_test(bit_sequence::from_string(eps), 8);
    ASSERT_EQ(r.nu.size(), 4u);
    EXPECT_EQ(r.nu[0], 4u);
    EXPECT_EQ(r.nu[1], 9u);
    EXPECT_EQ(r.nu[2], 3u);
    EXPECT_EQ(r.nu[3], 0u);
    EXPECT_NEAR(r.chi_squared, 4.882457, 1e-6);
    EXPECT_NEAR(r.p_value, 0.180609, 1e-6);
}

TEST(non_overlapping_kat, nist_example)
{
    // 2.7.4: eps = 10100100101110010110, B = 001, N = 2 blocks of 10:
    // W = {2, 1}, chi^2 = 2.133333, P = 0.344154.
    const auto r = non_overlapping_template_test(
        bit_sequence::from_string("10100100101110010110"), 0b001u, 3, 2);
    ASSERT_EQ(r.w.size(), 2u);
    EXPECT_EQ(r.w[0], 2u);
    EXPECT_EQ(r.w[1], 1u);
    EXPECT_NEAR(r.chi_squared, 2.133333, 1e-6);
    EXPECT_NEAR(r.p_value, 0.344154, 1e-6);
}

TEST(overlapping_kat, counts_overlapping_occurrences)
{
    // Hand-checked: B = 11 in 0110111011 gives overlapping hits at
    // positions 1 (11), 4-5 (111 -> two hits), 8.
    const auto r = overlapping_template_test(
        bit_sequence::from_string("0110111011"), 0b11u, 2, 10, 5);
    ASSERT_EQ(r.nu.size(), 6u);
    EXPECT_EQ(r.nu[4], 1u) << "exactly one block with 4 overlapping hits";
}

TEST(serial_kat, small_example)
{
    // 2.11.4: eps = 0011011101, m = 3: psi2_3 = 2.8, del = 1.6,
    // del^2 = 0.8, P1 = 0.808792, P2 = 0.670320.
    const auto r = serial_test(bit_sequence::from_string("0011011101"), 3);
    EXPECT_NEAR(r.psi2_m, 2.8, 1e-12);
    EXPECT_NEAR(r.del1, 1.6, 1e-12);
    EXPECT_NEAR(r.del2, 0.8, 1e-12);
    EXPECT_NEAR(r.p_value1, 0.808792, 1e-6);
    EXPECT_NEAR(r.p_value2, 0.670320, 1e-6);
}

TEST(approximate_entropy_kat, small_example)
{
    // 2.12.4: eps = 0100110101, m = 3: P = 0.261961.  (The ApEn quoted in
    // the NIST text is ln 2 - ApEn; the P-value is the check that matters.)
    const auto r = approximate_entropy_test(
        bit_sequence::from_string("0100110101"), 3);
    EXPECT_NEAR(r.p_value, 0.261961, 1e-6);
}

TEST(approximate_entropy_kat, pi_100)
{
    // 2.12.8: m = 2, ApEn = 0.665393, chi^2 = 5.550792, P = 0.235301.
    const auto r = approximate_entropy_test(pi_bits(), 2);
    EXPECT_NEAR(r.apen, 0.665393, 1e-6);
    EXPECT_NEAR(r.chi_squared, 5.550792, 1e-6);
    EXPECT_NEAR(r.p_value, 0.235301, 1e-6);
}

TEST(cumulative_sums_kat, small_example)
{
    // 2.13.4: eps = 1011010111: z = 4 (forward), P = 0.4116588.
    const auto r =
        cumulative_sums_test(bit_sequence::from_string("1011010111"));
    EXPECT_EQ(r.z_forward, 4);
    EXPECT_NEAR(r.p_forward, 0.4116588, 1e-5);
}

TEST(cumulative_sums_kat, pi_100)
{
    // 2.13.8: forward P = 0.219194, backward P = 0.114866.
    const auto r = cumulative_sums_test(pi_bits());
    EXPECT_EQ(r.z_forward, 16);
    EXPECT_EQ(r.z_backward, 19);
    EXPECT_NEAR(r.p_forward, 0.219194, 1e-6);
    EXPECT_NEAR(r.p_backward, 0.114866, 1e-6);
}

TEST(matrix_rank_kat, small_example)
{
    // 2.5.4: eps = 01011001001010101101, M = Q = 3: N = 2 matrices with
    // ranks 3 and 2, so F_M = 1, F_{M-1} = 1.  The doc computes
    // chi^2 = 0.596953, P = 0.741948 using the asymptotic 32x32 rank
    // probabilities {0.2888, 0.5776, 0.1336}; this implementation uses the
    // exact 3x3 probabilities (full rank 21/64 = 0.328125), giving the
    // full-precision values asserted below.
    const auto r = matrix_rank_test(
        bit_sequence::from_string("01011001001010101101"), 3, 3);
    EXPECT_EQ(r.matrices, 2u);
    EXPECT_EQ(r.full_rank, 1u);
    EXPECT_EQ(r.one_less, 1u);
    EXPECT_EQ(r.remaining, 0u);
    EXPECT_NEAR(r.chi_squared, 0.394558, 1e-6);
    EXPECT_NEAR(r.p_value, 0.820962, 1e-6);
}

TEST(dft_kat, small_example)
{
    // 2.6.4: eps = 1001010011, n = 10: T = sqrt(n ln(1/0.05)) = 5.473328,
    // N0 = 4.75, N1 = 5, d = 0.725476, P = 0.468160 (rev1a variance n/4).
    const auto r = dft_test(bit_sequence::from_string("1001010011"));
    EXPECT_NEAR(r.threshold, 5.473328, 1e-6);
    EXPECT_NEAR(r.n0, 4.75, 1e-12);
    EXPECT_NEAR(r.n1, 5.0, 1e-12);
    EXPECT_NEAR(r.d, 0.725476, 1e-6);
    EXPECT_NEAR(r.p_value, 0.468160, 1e-6);
}

TEST(dft_kat, pi_100_regression)
{
    // The rev1a 2.6.8 pi example (N1 = 46, P = 0.168669) is affected by
    // well-known errata in the doc's peak-counting convention; this pins
    // the implementation's full-precision result as a regression value.
    const auto r = dft_test(pi_bits());
    EXPECT_NEAR(r.d, 0.458831, 1e-6);
    EXPECT_NEAR(r.p_value, 0.646355, 1e-6);
}

TEST(universal_kat, small_example)
{
    // 2.9.4: eps = 01011010011101010111, L = 2, Q = 4: K = 6 test blocks
    // and fn = 1.1949875, expectedValue(2) = 1.5374383 (both exact per the
    // doc).  The doc's P = 0.767189 uses sigma = sqrt(variance) directly
    // "for illustration"; the real statistic applies the c(L, K) finite-K
    // correction (as the NIST STS code does), giving the values below.
    const auto r = universal_test(
        bit_sequence::from_string("01011010011101010111"), 2, 4);
    EXPECT_EQ(r.test_blocks, 6u);
    EXPECT_NEAR(r.fn, 1.1949875, 1e-7);
    EXPECT_NEAR(r.expected, 1.5374383, 1e-7);
    EXPECT_NEAR(r.sigma, 0.184510, 1e-6);
    EXPECT_NEAR(r.p_value, 0.063454, 1e-6);
}

TEST(linear_complexity_kat, berlekamp_massey_doc_example)
{
    // 2.10.4: the 13-bit block 1101011110001 has linear complexity L = 4
    // (LFSR x^4 + x + 1).
    EXPECT_EQ(berlekamp_massey({1, 1, 0, 1, 0, 1, 1, 1, 1, 0, 0, 0, 1}), 4u);
}

TEST(random_excursions_kat, small_example)
{
    // 2.14.4: eps = 0110110101: S walk gives J = 3 cycles; for state
    // x = 1 the doc computes chi^2 = 4.333033, P = 0.502529 with
    // six-digit rounded pi_k(x) tables (exact values below; the test is
    // "not applicable" at J = 3 < 500, as the doc notes, but the statistic
    // is still defined).
    const auto r = random_excursions_test(
        bit_sequence::from_string("0110110101"));
    EXPECT_EQ(r.cycles, 3u);
    EXPECT_FALSE(r.applicable);
    ASSERT_EQ(r.states.size(), 8u);
    // states run {-4..-1, 1..4}; x = +1 is index 4.
    EXPECT_EQ(r.states[4], 1);
    EXPECT_NEAR(r.chi_squared[4], 4.333033, 1e-3);
    EXPECT_NEAR(r.p_values[4], 0.502529, 1e-3);
}

TEST(random_excursions_variant_kat, small_example)
{
    // 2.15.4: eps = 0110110101, J = 3; state x = 1 is visited 4 times,
    // P = 0.683091.
    const auto r = random_excursions_variant_test(
        bit_sequence::from_string("0110110101"));
    EXPECT_EQ(r.cycles, 3u);
    ASSERT_EQ(r.states.size(), 18u);
    // states run {-9..-1, 1..9}; x = +1 is index 9.
    EXPECT_EQ(r.states[9], 1);
    EXPECT_EQ(r.visits[9], 4u);
    EXPECT_NEAR(r.p_values[9], 0.683091, 1e-6);
}

TEST(serial_kat, m2_uses_zero_psi0)
{
    // For m = 2 the m-2 level is the empty pattern: psi^2_0 = 0 and the
    // counts collapse to the single value n.
    const auto r = serial_test(pi_bits(), 2);
    EXPECT_DOUBLE_EQ(r.psi2_m2, 0.0);
    ASSERT_EQ(r.nu_m2.size(), 1u);
    EXPECT_EQ(r.nu_m2[0], 100u);
}

} // namespace
