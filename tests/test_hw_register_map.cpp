// Direct unit tests of the memory-mapped register interface: entry
// registration, group accounting for the top-level mux, width masking and
// sign extension, word accounting across bus widths.
#include "hw/register_map.hpp"

#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <stdexcept>

namespace {

using namespace otf::hw;

register_map small_map()
{
    register_map map;
    map.add_scalar("alpha", 18, true, [] { return 0x2FFFFu; });
    map.add_scalar("beta", 8, false, [] { return 0xABu; });
    map.add_group_element("bank", "bank[0]", 12, false,
                          [] { return 0x123u; });
    map.add_group_element("bank", "bank[1]", 12, false,
                          [] { return 0xFFFu; });
    map.add_group_element("file", "file[0]", 20, false,
                          [] { return 0xFFFFFu; });
    return map;
}

TEST(register_map, size_and_lookup)
{
    const register_map map = small_map();
    EXPECT_EQ(map.size(), 5u);
    EXPECT_EQ(map.index_of("beta"), 1u);
    EXPECT_EQ(map.index_of("bank[1]"), 3u);
    EXPECT_THROW((void)map.index_of("gamma"), std::out_of_range);
}

TEST(register_map, group_rules)
{
    register_map map;
    EXPECT_THROW(map.add_group_element("", "x", 8, false,
                                       [] { return 0u; }),
                 std::invalid_argument);
}

TEST(register_map, top_level_inputs_count_groups_once)
{
    const register_map map = small_map();
    // alpha + beta (scalars) + bank + file (groups) = 4 mux inputs.
    EXPECT_EQ(map.top_level_inputs(), 4u);
}

TEST(register_map, max_width_is_the_mux_data_width)
{
    const register_map map = small_map();
    EXPECT_EQ(map.max_width(), 20u);
}

TEST(register_map, raw_reads_mask_to_width)
{
    const register_map map = small_map();
    // alpha is 18 bits wide: the raw view masks 0x2FFFF to 18 bits
    // (0x2FFFF already fits) and beta keeps its byte.
    EXPECT_EQ(map.read_raw(map.index_of("alpha")), 0x2FFFFu);
    EXPECT_EQ(map.read_raw(map.index_of("beta")), 0xABu);
}

TEST(register_map, signed_entries_sign_extend_on_read_value)
{
    const register_map map = small_map();
    // 0x2FFFF in 18 bits has the sign bit set: value = 0x2FFFF - 2^18.
    EXPECT_EQ(map.read_value("alpha"),
              static_cast<std::int64_t>(0x2FFFF) - (1 << 18));
    // Unsigned entries pass through.
    EXPECT_EQ(map.read_value("beta"), 0xAB);
}

TEST(register_map, unsigned_full_width_values_survive)
{
    const register_map map = small_map();
    EXPECT_EQ(map.read_value("file[0]"), 0xFFFFF);
}

TEST(register_map, total_words_depends_on_bus_width)
{
    const register_map map = small_map();
    // 16-bit bus: 18b->2 + 8b->1 + 12b->1 + 12b->1 + 20b->2 = 7 words.
    EXPECT_EQ(map.total_words(16), 7u);
    // 32-bit bus: every value fits one word.
    EXPECT_EQ(map.total_words(32), 5u);
}

TEST(register_map, entries_preserve_registration_order)
{
    const register_map map = small_map();
    EXPECT_EQ(map.entry(0).name, "alpha");
    EXPECT_EQ(map.entry(4).name, "file[0]");
    EXPECT_TRUE(map.entry(0).is_signed);
    EXPECT_FALSE(map.entry(1).is_signed);
    EXPECT_EQ(map.entry(2).group, "bank");
    EXPECT_THROW((void)map.entry(9), std::out_of_range);
}

TEST(register_map, getters_are_live_views)
{
    // The map must reflect the current hardware state on every read, not
    // a snapshot taken at registration.
    std::uint64_t counter = 0;
    register_map map;
    map.add_scalar("live", 16, false, [&counter] { return counter; });
    EXPECT_EQ(map.read_value("live"), 0);
    counter = 77;
    EXPECT_EQ(map.read_value("live"), 77);
}

// ----------------------------------------------------- control plane --

TEST(control_plane, write_and_read_back)
{
    std::uint64_t staged = 3;
    register_map map;
    map.add_control(
        "cfg.x", 8, [&staged] { return staged; },
        [&staged](std::uint64_t v) { staged = v; });
    EXPECT_EQ(map.control_count(), 1u);
    EXPECT_EQ(map.read_control("cfg.x"), 3u);
    map.write_control("cfg.x", 42);
    EXPECT_EQ(staged, 42u);
    EXPECT_EQ(map.read_control(0), 42u);
}

TEST(control_plane, writes_mask_to_width)
{
    std::uint64_t staged = 0;
    register_map map;
    map.add_control(
        "cfg.narrow", 4, [&staged] { return staged; },
        [&staged](std::uint64_t v) { staged = v; });
    map.write_control("cfg.narrow", 0x1FF);
    EXPECT_EQ(staged, 0xFu) << "a 4-bit register keeps 4 bits";
    staged = 0x7C;
    EXPECT_EQ(map.read_control("cfg.narrow"), 0xCu)
        << "reads mask too (the bus only carries width bits)";
}

TEST(control_plane, unknown_name_throws)
{
    register_map map;
    EXPECT_THROW(map.write_control("cfg.ghost", 1), std::out_of_range);
    EXPECT_THROW((void)map.read_control("cfg.ghost"), std::out_of_range);
    EXPECT_THROW((void)map.control(0), std::out_of_range);
}

TEST(control_plane, requires_getter_and_setter)
{
    register_map map;
    EXPECT_THROW(map.add_control("cfg.x", 8, nullptr,
                                 [](std::uint64_t) {}),
                 std::invalid_argument);
    EXPECT_THROW(map.add_control("cfg.x", 8, [] { return 0u; }, nullptr),
                 std::invalid_argument);
}

TEST(control_plane, separate_from_result_plane_accounting)
{
    register_map map = small_map();
    const unsigned inputs = map.top_level_inputs();
    const unsigned words = map.total_words(16);
    std::uint64_t staged = 0;
    map.add_control(
        "cfg.x", 16, [&staged] { return staged; },
        [&staged](std::uint64_t v) { staged = v; });
    EXPECT_EQ(map.size(), 5u) << "controls are not result entries";
    EXPECT_EQ(map.top_level_inputs(), inputs);
    EXPECT_EQ(map.total_words(16), words);
    EXPECT_THROW((void)map.index_of("cfg.x"), std::out_of_range);
}

TEST(control_plane, self_modifying_write_is_safe)
{
    // The reconfigure strobe rebuilds the whole map from inside its own
    // setter; write_control must survive the registered function being
    // destroyed mid-call.
    auto map = std::make_unique<register_map>();
    bool fired = false;
    register_map* raw = map.get();
    raw->add_control(
        "ctrl.rebuild", 1, [] { return 0u; },
        [raw, &fired](std::uint64_t) {
            *raw = register_map{}; // drops every entry, this one included
            fired = true;
        });
    raw->write_control("ctrl.rebuild", 1);
    EXPECT_TRUE(fired);
    EXPECT_EQ(raw->control_count(), 0u);
}

} // namespace
