// Golden-model tests of the bit-serial hardware engines: every engine's
// counters must match a brute-force recomputation on the same sequence,
// across sources with very different statistics (the equivalence leg of
// Table II's hardware column).
#include "core/design_config.hpp"
#include "hw/testing_block.hpp"
#include "nist/tests.hpp"
#include "trng/ring_oscillator.hpp"
#include "trng/sources.hpp"

#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <tuple>

namespace {

using namespace otf;

hw::block_config small_config()
{
    // 4096-bit all-tests design: fast enough to sweep many sources.
    return core::custom_design(12, hw::test_set{}
                                       .with(hw::test_id::frequency)
                                       .with(hw::test_id::block_frequency)
                                       .with(hw::test_id::runs)
                                       .with(hw::test_id::longest_run)
                                       .with(hw::test_id::non_overlapping_template)
                                       .with(hw::test_id::overlapping_template)
                                       .with(hw::test_id::serial)
                                       .with(hw::test_id::approximate_entropy)
                                       .with(hw::test_id::cumulative_sums));
}

std::unique_ptr<trng::entropy_source> make_source(const std::string& kind,
                                                  std::uint64_t seed)
{
    if (kind == "ideal") {
        return std::make_unique<trng::ideal_source>(seed);
    }
    if (kind == "biased") {
        return std::make_unique<trng::biased_source>(seed, 0.55);
    }
    if (kind == "markov") {
        return std::make_unique<trng::markov_source>(seed, 0.6);
    }
    if (kind == "burst") {
        return std::make_unique<trng::burst_failure_source>(seed, 0.005,
                                                            64);
    }
    if (kind == "ro") {
        auto src = std::make_unique<trng::ring_oscillator_source>(
            seed, trng::ring_oscillator_source::parameters{});
        src->set_injection(0.5);
        return src;
    }
    throw std::invalid_argument("unknown source kind");
}

using engine_case = std::tuple<std::string, std::uint64_t>;

class engine_golden : public ::testing::TestWithParam<engine_case> {
protected:
    void SetUp() override
    {
        cfg_ = small_config();
        auto src = make_source(std::get<0>(GetParam()),
                               std::get<1>(GetParam()));
        seq_ = src->generate(cfg_.n());
        block_ = std::make_unique<hw::testing_block>(cfg_);
        block_->run(seq_);
    }

    hw::block_config cfg_;
    bit_sequence seq_;
    std::unique_ptr<hw::testing_block> block_;
};

TEST_P(engine_golden, cusum_matches_reference_walk)
{
    const auto ref = nist::cumulative_sums_test(seq_);
    EXPECT_EQ(block_->cusum()->s_final(), ref.s_final);
    EXPECT_EQ(block_->cusum()->s_max(), ref.s_max);
    EXPECT_EQ(block_->cusum()->s_min(), ref.s_min);
}

TEST_P(engine_golden, runs_matches_reference_count)
{
    const auto ref = nist::runs_test(seq_);
    EXPECT_EQ(block_->runs()->n_runs(), ref.v_n);
}

TEST_P(engine_golden, block_frequency_matches_reference_blocks)
{
    const auto ref = nist::block_frequency_test(
        seq_, 1u << cfg_.bf_log2_m);
    ASSERT_EQ(block_->block_frequency()->block_count(), ref.ones.size());
    for (unsigned b = 0; b < ref.ones.size(); ++b) {
        EXPECT_EQ(block_->block_frequency()->ones_in_block(b), ref.ones[b])
            << "block " << b;
    }
}

TEST_P(engine_golden, longest_run_matches_reference_categories)
{
    const auto ref = nist::longest_run_test(seq_, 1u << cfg_.lr_log2_m,
                                            cfg_.lr_v_lo, cfg_.lr_v_hi);
    ASSERT_EQ(block_->longest_run()->category_count(), ref.nu.size());
    for (unsigned c = 0; c < ref.nu.size(); ++c) {
        EXPECT_EQ(block_->longest_run()->category(c), ref.nu[c])
            << "category " << c;
    }
}

TEST_P(engine_golden, non_overlapping_matches_reference_w)
{
    const unsigned blocks = 1u << (cfg_.log2_n - cfg_.t7_log2_m);
    const auto ref = nist::non_overlapping_template_test(
        seq_, cfg_.t7_template, cfg_.template_length, blocks);
    for (unsigned b = 0; b < blocks; ++b) {
        EXPECT_EQ(block_->non_overlapping()->matches_in_block(b), ref.w[b])
            << "block " << b;
    }
}

TEST_P(engine_golden, overlapping_matches_reference_categories)
{
    const auto ref = nist::overlapping_template_test(
        seq_, cfg_.t8_template, cfg_.template_length,
        1u << cfg_.t8_log2_m, cfg_.t8_max_count);
    for (unsigned c = 0; c <= cfg_.t8_max_count; ++c) {
        EXPECT_EQ(block_->overlapping()->category(c), ref.nu[c])
            << "category " << c;
    }
}

TEST_P(engine_golden, serial_matches_reference_pattern_counts)
{
    const auto ref = nist::serial_test(seq_, cfg_.serial_m);
    for (std::uint32_t p = 0; p < (1u << cfg_.serial_m); ++p) {
        EXPECT_EQ(block_->serial()->count(cfg_.serial_m, p), ref.nu_m[p])
            << "4-bit pattern " << p;
    }
    for (std::uint32_t p = 0; p < (1u << (cfg_.serial_m - 1)); ++p) {
        EXPECT_EQ(block_->serial()->count(cfg_.serial_m - 1, p),
                  ref.nu_m1[p])
            << "3-bit pattern " << p;
    }
    for (std::uint32_t p = 0; p < (1u << (cfg_.serial_m - 2)); ++p) {
        EXPECT_EQ(block_->serial()->count(cfg_.serial_m - 2, p),
                  ref.nu_m2[p])
            << "2-bit pattern " << p;
    }
}

TEST_P(engine_golden, serial_counter_files_sum_to_n)
{
    for (const unsigned len :
         {cfg_.serial_m, cfg_.serial_m - 1, cfg_.serial_m - 2}) {
        std::uint64_t total = 0;
        for (std::uint32_t p = 0; p < (1u << len); ++p) {
            total += block_->serial()->count(len, p);
        }
        EXPECT_EQ(total, cfg_.n()) << "pattern length " << len;
    }
}

TEST_P(engine_golden, ones_derivable_from_cusum_final)
{
    // Sharing trick 1: N_ones = (S_final + n) / 2.
    const auto ones = static_cast<std::int64_t>(seq_.count_ones());
    const std::int64_t derived =
        (block_->cusum()->s_final() + static_cast<std::int64_t>(cfg_.n()))
        / 2;
    EXPECT_EQ(derived, ones);
}

INSTANTIATE_TEST_SUITE_P(
    sources_and_seeds, engine_golden,
    ::testing::Combine(::testing::Values("ideal", "biased", "markov",
                                         "burst", "ro"),
                       ::testing::Values(1u, 7u, 42u, 1234u)));

// Degenerate streams exercise the saturation and boundary paths.
TEST(engine_edge_cases, all_zeros_sequence)
{
    const auto cfg = small_config();
    hw::testing_block block(cfg);
    block.run(bit_sequence(cfg.n(), false));
    EXPECT_EQ(block.cusum()->s_final(),
              -static_cast<std::int64_t>(cfg.n()));
    EXPECT_EQ(block.runs()->n_runs(), 1u);
    EXPECT_EQ(block.serial()->count(4, 0), cfg.n())
        << "pattern 0000 occurs at every cyclic position";
    EXPECT_EQ(block.longest_run()->category(0),
              cfg.n() >> cfg.lr_log2_m)
        << "every block lands in the lowest category";
}

TEST(engine_edge_cases, all_ones_sequence)
{
    const auto cfg = small_config();
    hw::testing_block block(cfg);
    block.run(bit_sequence(cfg.n(), true));
    EXPECT_EQ(block.cusum()->s_final(),
              static_cast<std::int64_t>(cfg.n()));
    EXPECT_EQ(block.cusum()->s_max(),
              static_cast<std::int64_t>(cfg.n()));
    EXPECT_EQ(block.cusum()->s_min(), 0);
    EXPECT_EQ(block.serial()->count(4, 15), cfg.n());
    const unsigned last =
        block.longest_run()->category_count() - 1;
    EXPECT_EQ(block.longest_run()->category(last),
              cfg.n() >> cfg.lr_log2_m);
    // The all-ones overlapping template fires at every eligible position;
    // every block ends in the top category.
    EXPECT_EQ(block.overlapping()->category(cfg.t8_max_count),
              cfg.n() >> cfg.t8_log2_m);
}

TEST(engine_edge_cases, alternating_sequence_runs)
{
    const auto cfg = small_config();
    hw::testing_block block(cfg);
    bit_sequence seq;
    for (std::uint64_t i = 0; i < cfg.n(); ++i) {
        seq.push_back((i & 1) != 0);
    }
    block.run(seq);
    EXPECT_EQ(block.runs()->n_runs(), cfg.n()) << "every bit opens a run";
    EXPECT_EQ(block.cusum()->s_final(), 0);
}

TEST(engine_edge_cases, non_overlap_restart_differs_from_overlap)
{
    // Stream of repeated 0b001001001... with template 001: overlapping and
    // non-overlapping counts coincide here (hits spaced 3 apart), but a
    // 0b0101... stream against template 010 shows the inhibit behaviour.
    auto cfg = core::custom_design(
        8, hw::test_set{}
               .with(hw::test_id::frequency)
               .with(hw::test_id::non_overlapping_template)
               .with(hw::test_id::cumulative_sums));
    cfg.template_length = 3;
    cfg.t7_template = 0b010;
    cfg.t7_log2_m = 7; // two blocks of 128
    cfg.validate();
    hw::testing_block block(cfg);
    bit_sequence seq;
    for (unsigned i = 0; i < 256; ++i) {
        seq.push_back((i % 2) == 1); // 0101 0101 ...
    }
    block.run(seq);
    // In "010101..." the pattern 010 appears at every even offset
    // overlapping, but non-overlapping counting restarts after each match:
    // positions 0, 3 do not both match (pos 3 starts with 1) -> matches at
    // 0, 4, 8, ... every 4 positions among the eligible windows.
    const auto ref = nist::non_overlapping_template_test(seq, 0b010, 3, 2);
    EXPECT_EQ(block.non_overlapping()->matches_in_block(0), ref.w[0]);
    EXPECT_EQ(block.non_overlapping()->matches_in_block(1), ref.w[1]);
}

} // namespace
