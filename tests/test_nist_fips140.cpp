// Tests of the FIPS 140-2 battery: interval bounds, pass behaviour on
// healthy sources, failure behaviour per defect class, and its
// insensitivity compared with the NIST tests (the reason the paper moves
// beyond FIPS-style monitors).
#include "nist/fips140.hpp"
#include "nist/tests.hpp"
#include "trng/sources.hpp"

#include <cstdint>
#include <gtest/gtest.h>
#include <numeric>

namespace {

using namespace otf;
using namespace otf::nist;

bit_sequence fips_window(trng::entropy_source& src)
{
    return src.generate(fips_sequence_length);
}

TEST(fips140, requires_exact_length)
{
    EXPECT_THROW(fips140_2_test(bit_sequence(1000, true)),
                 std::invalid_argument);
}

class fips_seeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(fips_seeds, healthy_source_passes_all_four)
{
    trng::ideal_source src(GetParam());
    const auto r = fips140_2_test(fips_window(src));
    EXPECT_TRUE(r.monobit_pass) << "ones = " << r.ones;
    EXPECT_TRUE(r.poker_pass) << "X = " << r.poker_statistic;
    EXPECT_TRUE(r.runs_pass);
    EXPECT_TRUE(r.long_run_pass) << "longest = " << r.longest_run;
    EXPECT_TRUE(r.all_pass());
}

INSTANTIATE_TEST_SUITE_P(seeds, fips_seeds,
                         ::testing::Values(1, 2, 3, 4, 5, 10, 20, 30));

TEST(fips140, run_counts_are_complete)
{
    trng::ideal_source src(9);
    const bit_sequence seq = fips_window(src);
    const auto r = fips140_2_test(seq);
    // Total runs recorded must equal the sequence's run count.
    const std::uint64_t recorded =
        std::accumulate(r.runs_of_zeros.begin(), r.runs_of_zeros.end(),
                        std::uint64_t{0})
        + std::accumulate(r.runs_of_ones.begin(), r.runs_of_ones.end(),
                          std::uint64_t{0});
    EXPECT_EQ(recorded, runs_test(seq).v_n);
}

TEST(fips140, stuck_source_fails_everything_decidable)
{
    const auto r = fips140_2_test(bit_sequence(fips_sequence_length, true));
    EXPECT_FALSE(r.monobit_pass);
    EXPECT_FALSE(r.poker_pass);
    EXPECT_FALSE(r.runs_pass);
    EXPECT_FALSE(r.long_run_pass);
}

TEST(fips140, bias_trips_monobit)
{
    trng::biased_source src(6, 0.53);
    const auto r = fips140_2_test(fips_window(src));
    EXPECT_FALSE(r.monobit_pass);
}

TEST(fips140, correlation_trips_runs)
{
    trng::markov_source src(7, 0.6);
    const auto r = fips140_2_test(fips_window(src));
    EXPECT_FALSE(r.runs_pass);
}

TEST(fips140, burst_trips_long_run)
{
    trng::burst_failure_source src(8, 0.001, 64);
    const auto r = fips140_2_test(fips_window(src));
    EXPECT_FALSE(r.long_run_pass);
}

TEST(fips140, weaker_than_nist_on_subtle_bias)
{
    // A 1% bias passes the wide FIPS monobit interval at 20000 bits, but
    // the NIST frequency test on the same window rejects at alpha = 0.01
    // for most windows -- the sensitivity gap that motivates the paper's
    // platform.
    unsigned fips_failures = 0;
    unsigned nist_failures = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        trng::biased_source src(seed, 0.508);
        const bit_sequence seq = fips_window(src);
        fips_failures += fips140_2_test(seq).monobit_pass ? 0 : 1;
        nist_failures += frequency_test(seq).p_value < 0.01 ? 1 : 0;
    }
    EXPECT_LT(fips_failures, nist_failures);
    EXPECT_GE(nist_failures, 5u);
}

} // namespace
