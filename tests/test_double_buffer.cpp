// Tests of the double-buffered (continuous-operation) mode: latched
// results survive the restart, the next window streams while the previous
// results remain readable, and the result latch shows up in the area
// model -- the cost of the paper's "run the hardware block all the time".
#include "core/design_config.hpp"
#include "core/monitor.hpp"
#include "trng/sources.hpp"

#include <cstdint>
#include <gtest/gtest.h>

namespace {

using namespace otf;

hw::block_config buffered_config()
{
    hw::block_config cfg = core::paper_design(16, core::tier::light);
    cfg.double_buffered = true;
    cfg.name += " (double buffered)";
    return cfg;
}

TEST(double_buffer, results_survive_restart_and_next_window)
{
    const auto cfg = buffered_config();
    hw::testing_block block(cfg);
    trng::ideal_source src(50);

    block.run(src.generate(cfg.n()));
    const std::int64_t s_final =
        block.registers().read_value("cusum.s_final");
    const std::int64_t runs = block.registers().read_value("runs.n_runs");
    EXPECT_TRUE(block.latched());

    // Restart and stream half of the next window: the interface must
    // still serve the finished window's values.
    block.restart();
    for (unsigned i = 0; i < 1000; ++i) {
        block.feed(src.next_bit());
    }
    EXPECT_EQ(block.registers().read_value("cusum.s_final"), s_final);
    EXPECT_EQ(block.registers().read_value("runs.n_runs"), runs);
}

TEST(double_buffer, without_latch_restart_clears_the_interface)
{
    const auto cfg = core::paper_design(16, core::tier::light);
    hw::testing_block block(cfg);
    trng::ideal_source src(51);
    block.run(src.generate(cfg.n()));
    EXPECT_NE(block.registers().read_value("runs.n_runs"), 0);
    block.restart();
    EXPECT_EQ(block.registers().read_value("runs.n_runs"), 0)
        << "live counters were cleared and the interface shows it";
}

TEST(double_buffer, second_finish_replaces_the_latch)
{
    const auto cfg = buffered_config();
    hw::testing_block block(cfg);
    // Window of all ones, then all zeros: the latch must follow.
    block.run(bit_sequence(cfg.n(), true));
    EXPECT_EQ(block.registers().read_value("cusum.s_final"),
              static_cast<std::int64_t>(cfg.n()));
    block.restart();
    block.run(bit_sequence(cfg.n(), false));
    EXPECT_EQ(block.registers().read_value("cusum.s_final"),
              -static_cast<std::int64_t>(cfg.n()));
}

TEST(double_buffer, latch_costs_one_ff_per_mapped_bit)
{
    const auto plain_cfg = core::paper_design(16, core::tier::light);
    const hw::testing_block plain(plain_cfg);
    const hw::testing_block buffered(buffered_config());

    unsigned mapped_bits = 0;
    for (const auto& e : plain.registers().entries()) {
        mapped_bits += e.width;
    }
    EXPECT_EQ(buffered.cost().ffs - plain.cost().ffs, mapped_bits);
}

TEST(double_buffer, verdicts_unchanged)
{
    trng::ideal_source src(52);
    const bit_sequence seq = src.generate(1u << 16);

    core::monitor plain(core::paper_design(16, core::tier::light), 0.01);
    core::monitor buffered(buffered_config(), 0.01);
    const auto a = plain.test_sequence(seq);
    const auto b = buffered.test_sequence(seq);
    ASSERT_EQ(a.software.verdicts.size(), b.software.verdicts.size());
    for (std::size_t i = 0; i < a.software.verdicts.size(); ++i) {
        EXPECT_EQ(a.software.verdicts[i].statistic,
                  b.software.verdicts[i].statistic);
    }
}

} // namespace
