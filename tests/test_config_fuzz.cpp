// Configuration-space fuzzing: the platform must behave across the whole
// parametric design space the paper's future work asks for (software-
// selectable lengths and parameters), not just the eight published
// points.  Random-but-valid configurations are generated from a seeded
// PRNG; every one must construct, expose a consistent register map, run a
// window end to end, and produce the same verdicts again after restart.
// Also checks the 32-bit-platform projection: identical verdicts with
// fewer native instructions.
#include "core/design_config.hpp"
#include "core/monitor.hpp"
#include "trng/sources.hpp"
#include "trng/xoshiro.hpp"

#include <cstdint>
#include <gtest/gtest.h>
#include <set>
#include <string>

namespace {

using namespace otf;

hw::block_config random_config(std::uint64_t seed)
{
    trng::xoshiro256ss rng(seed);
    const unsigned log2_n = 10 + static_cast<unsigned>(rng.next() % 9);

    // Random subset that always contains the base tests (the cusum walk
    // is structural) and respects the test-12-needs-test-11 rule.
    hw::test_set tests;
    tests.with(hw::test_id::frequency)
        .with(hw::test_id::runs)
        .with(hw::test_id::cumulative_sums)
        .with(hw::test_id::block_frequency)
        .with(hw::test_id::longest_run);
    if (rng.next_bit()) {
        tests.with(hw::test_id::non_overlapping_template);
    }
    if (rng.next_bit()) {
        tests.with(hw::test_id::non_overlapping_template)
            .with(hw::test_id::overlapping_template);
    }
    const bool serial = rng.next_bit();
    if (serial) {
        tests.with(hw::test_id::serial);
        if (rng.next_bit()) {
            tests.with(hw::test_id::approximate_entropy);
        }
    }

    hw::block_config cfg = core::custom_design(log2_n, tests);
    if (serial) {
        // Sweep the pattern length too (the paper fixes m = 4; the
        // engines support 3..8).
        cfg.serial_m = 3 + static_cast<unsigned>(rng.next() % 3);
        if (rng.next_bit()) {
            cfg.serial_transfer_marginals = true;
        }
    }
    cfg.name = "fuzz seed " + std::to_string(seed);
    cfg.validate();
    return cfg;
}

class config_fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(config_fuzz, register_names_are_unique)
{
    const hw::testing_block block(random_config(GetParam()));
    std::set<std::string> names;
    for (const auto& e : block.registers().entries()) {
        EXPECT_TRUE(names.insert(e.name).second)
            << "duplicate register: " << e.name;
        EXPECT_GE(e.width, 1u);
        EXPECT_LE(e.width, 64u);
    }
}

TEST_P(config_fuzz, map_fits_seven_bit_addressing)
{
    const hw::testing_block block(random_config(GetParam()));
    EXPECT_LE(block.registers().top_level_inputs(), 128u)
        << "the paper's interface uses a 7-bit address";
}

TEST_P(config_fuzz, window_runs_end_to_end_and_is_repeatable)
{
    const hw::block_config cfg = random_config(GetParam());
    core::monitor mon(cfg, 0.01);
    trng::ideal_source src(GetParam() * 7919 + 1);
    const bit_sequence window = src.generate(cfg.n());

    const auto first = mon.test_sequence(window);
    EXPECT_EQ(first.software.verdicts.size(), cfg.tests.count());
    const auto second = mon.test_sequence(window);
    ASSERT_EQ(first.software.verdicts.size(),
              second.software.verdicts.size());
    for (std::size_t i = 0; i < first.software.verdicts.size(); ++i) {
        EXPECT_EQ(first.software.verdicts[i].statistic,
                  second.software.verdicts[i].statistic)
            << first.software.verdicts[i].name;
    }
}

TEST_P(config_fuzz, resource_model_is_sane)
{
    const hw::testing_block block(random_config(GetParam()));
    const auto r = block.cost();
    EXPECT_GT(r.ffs, 0u);
    EXPECT_GT(r.luts, 0u);
    const auto fpga = rtl::estimate_spartan6(r);
    EXPECT_GT(fpga.slices, 0u);
    EXPECT_GT(fpga.max_freq_mhz, 50.0);
    EXPECT_LT(fpga.max_freq_mhz, 400.0);
}

TEST_P(config_fuzz, thirty_two_bit_platform_same_verdicts_fewer_ops)
{
    const hw::block_config cfg = random_config(GetParam());
    trng::ideal_source src(GetParam() + 17);
    const bit_sequence window = src.generate(cfg.n());

    hw::testing_block block(cfg);
    block.run(window);
    const core::software_runner runner(
        cfg, core::compute_critical_values(cfg, 0.01));

    sw16::soft_cpu cpu16(16);
    sw16::soft_cpu cpu32(32);
    const auto r16 = runner.run(block.registers(), cpu16);
    const auto r32 = runner.run(block.registers(), cpu32);

    ASSERT_EQ(r16.verdicts.size(), r32.verdicts.size());
    for (std::size_t i = 0; i < r16.verdicts.size(); ++i) {
        EXPECT_EQ(r16.verdicts[i].pass, r32.verdicts[i].pass)
            << r16.verdicts[i].name;
        EXPECT_EQ(r16.verdicts[i].statistic, r32.verdicts[i].statistic);
    }
    EXPECT_LT(r32.total_ops.total(), r16.total_ops.total())
        << "wider words mean fewer native instructions (the paper's "
           "32-bit projection)";
}

INSTANTIATE_TEST_SUITE_P(seeds, config_fuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

} // namespace
