// Fault-injection suite for the durable log (base/wal.hpp).
//
// The WAL's contract is a *valid-prefix* guarantee: whatever happens to
// the tail or the middle of a segment -- a torn write, a flipped bit --
// recovery yields exactly the records whose frames are wholly intact
// before the first damaged byte, never a garbage record and never a
// crash.  This suite makes that a tested property instead of a claim:
// truncation at every byte offset of the segment, a single-bit flip at
// every bit of the segment, and drop-not-tear behaviour at the size
// bound.  All randomness is seeded (support/fixed_seed.hpp) via
// mt19937_64, whose output is pinned by the standard, so every run
// injects exactly the same faults.
#include "base/wal.hpp"

#include "core/design_config.hpp"
#include "core/supervisor.hpp"
#include "core/telemetry_log.hpp"
#include "support/fixed_seed.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

namespace {

using namespace otf;

// ---------------------------------------------------------------------
// CRC32C.
// ---------------------------------------------------------------------

TEST(Crc32c, KnownAnswer)
{
    // The canonical CRC32C check value (RFC 3720 appendix B.4): the
    // ASCII digits "123456789" must hash to 0xe3069283.
    const char digits[] = "123456789";
    EXPECT_EQ(base::crc32c(digits, 9), 0xe3069283u);
    EXPECT_EQ(base::crc32c_table_path(digits, 9), 0xe3069283u);
}

TEST(Crc32c, HardwarePathMatchesTable)
{
    // Whatever path crc32c() compiled to (SSE4.2 or table), it must be
    // bit-identical to the byte-at-a-time reference, at every length
    // and alignment a frame walk can produce.
    std::mt19937_64 rng(test::kCanonicalSeed);
    std::vector<std::uint8_t> buf(257);
    for (std::uint8_t& b : buf) {
        b = static_cast<std::uint8_t>(rng());
    }
    for (std::size_t off = 0; off < 9; ++off) {
        for (std::size_t len = 0; len + off <= buf.size(); len += 7) {
            EXPECT_EQ(base::crc32c(buf.data() + off, len),
                      base::crc32c_table_path(buf.data() + off, len));
        }
    }
}

TEST(Crc32c, SeedChains)
{
    // Chaining via the seed must equal hashing the concatenation (the
    // writer hashes type and payload as two calls).
    const std::uint8_t data[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    const std::uint32_t whole = base::crc32c(data, sizeof data);
    const std::uint32_t first = base::crc32c(data, 4);
    EXPECT_EQ(base::crc32c(data + 4, sizeof data - 4, first), whole);
}

// ---------------------------------------------------------------------
// byte_sink / byte_cursor.
// ---------------------------------------------------------------------

TEST(ByteCodec, RoundTripsEveryFieldType)
{
    base::byte_sink sink;
    sink.u8(0xab);
    sink.u16(0xbeef);
    sink.u32(0xdeadbeefu);
    sink.u64(0x0123456789abcdefULL);
    sink.f64(-0.0625);
    sink.boolean(true);
    sink.boolean(false);
    sink.str("");
    sink.str("evidence");

    base::byte_cursor cursor(sink.bytes());
    EXPECT_EQ(cursor.u8(), 0xab);
    EXPECT_EQ(cursor.u16(), 0xbeef);
    EXPECT_EQ(cursor.u32(), 0xdeadbeefu);
    EXPECT_EQ(cursor.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(cursor.f64(), -0.0625);
    EXPECT_TRUE(cursor.boolean());
    EXPECT_FALSE(cursor.boolean());
    EXPECT_EQ(cursor.str(), "");
    EXPECT_EQ(cursor.str(), "evidence");
    EXPECT_TRUE(cursor.exhausted());
}

TEST(ByteCodec, LittleEndianOnTheWire)
{
    base::byte_sink sink;
    sink.u32(0x01020304u);
    ASSERT_EQ(sink.bytes().size(), 4u);
    EXPECT_EQ(sink.bytes()[0], 0x04);
    EXPECT_EQ(sink.bytes()[3], 0x01);
}

TEST(ByteCodec, DoubleTravelsAsBitPattern)
{
    // The replay contract is bitwise P-value equality, so the codec
    // must preserve every bit of the IEEE representation -- including
    // a signalling-ish NaN payload.
    const std::uint64_t nan_bits = 0x7ff4000000000001ULL;
    double v;
    std::memcpy(&v, &nan_bits, 8);
    base::byte_sink sink;
    sink.f64(v);
    base::byte_cursor cursor(sink.bytes());
    const double back = cursor.f64();
    std::uint64_t back_bits;
    std::memcpy(&back_bits, &back, 8);
    EXPECT_EQ(back_bits, nan_bits);
}

TEST(ByteCodec, CursorOverrunThrows)
{
    base::byte_sink sink;
    sink.u16(7);
    base::byte_cursor cursor(sink.bytes());
    EXPECT_EQ(cursor.u16(), 7);
    EXPECT_THROW(cursor.u8(), std::runtime_error);
    base::byte_cursor str_cursor(sink.bytes());
    // As a string header, 7 promises 7 bytes the buffer does not have.
    EXPECT_THROW(str_cursor.str(), std::runtime_error);
}

TEST(ByteCodec, OversizedStringThrows)
{
    base::byte_sink sink;
    EXPECT_THROW(sink.str(std::string(70000, 'x')), std::length_error);
}

// ---------------------------------------------------------------------
// Segment round trip.
// ---------------------------------------------------------------------

std::string temp_path(const char* name)
{
    return std::string("wal_test_") + name + ".wal";
}

/// Write a deterministic segment of `count` records with mixed sizes
/// (empty payloads included) and return both the records and the file
/// image.
struct written_segment {
    std::vector<base::wal_record> records;
    std::vector<std::uint8_t> image;
};

written_segment write_segment(const std::string& path, unsigned count,
                              std::uint64_t seed)
{
    written_segment seg;
    std::mt19937_64 rng(seed);
    {
        base::wal_writer writer(path, 7);
        for (unsigned i = 0; i < count; ++i) {
            base::wal_record rec;
            rec.type = static_cast<std::uint8_t>(1 + (rng() % 4));
            const std::size_t len = static_cast<std::size_t>(rng() % 40);
            rec.payload.resize(len);
            for (std::uint8_t& b : rec.payload) {
                b = static_cast<std::uint8_t>(rng());
            }
            EXPECT_TRUE(
                writer.append(rec.type, rec.payload.data(), len));
            seg.records.push_back(std::move(rec));
        }
    }
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::uint8_t chunk[4096];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
        seg.image.insert(seg.image.end(), chunk, chunk + got);
    }
    std::fclose(f);
    return seg;
}

/// End offset of each frame in the image (frame i spans
/// [ends[i-1], ends[i])); ends[-1] is the header.
std::vector<std::size_t> frame_ends(const written_segment& seg)
{
    std::vector<std::size_t> ends;
    std::size_t pos = base::wal_header_bytes;
    for (const base::wal_record& rec : seg.records) {
        pos += base::wal_frame_overhead + rec.payload.size();
        ends.push_back(pos);
    }
    return ends;
}

TEST(WalSegment, RoundTripIdentity)
{
    const std::string path = temp_path("roundtrip");
    const written_segment seg =
        write_segment(path, 25, test::fixture_seed(1));

    const base::wal_read_result result = base::wal_read(path);
    EXPECT_TRUE(result.header_ok);
    EXPECT_EQ(result.schema, 7u);
    EXPECT_TRUE(result.clean);
    EXPECT_EQ(result.file_bytes, seg.image.size());
    EXPECT_EQ(result.valid_bytes, seg.image.size());
    ASSERT_EQ(result.records.size(), seg.records.size());
    for (std::size_t i = 0; i < seg.records.size(); ++i) {
        EXPECT_EQ(result.records[i], seg.records[i]) << "record " << i;
    }
    std::remove(path.c_str());
}

TEST(WalSegment, HeaderOnlySegmentIsCleanAndEmpty)
{
    const std::string path = temp_path("empty");
    {
        base::wal_writer writer(path, 3);
    }
    const base::wal_read_result result = base::wal_read(path);
    EXPECT_TRUE(result.header_ok);
    EXPECT_EQ(result.schema, 3u);
    EXPECT_TRUE(result.clean);
    EXPECT_TRUE(result.records.empty());
    std::remove(path.c_str());
}

TEST(WalSegment, NotASegment)
{
    const std::uint8_t junk[] = {'n', 'o', 't', 'a', 'w', 'a', 'l'};
    const base::wal_read_result result =
        base::wal_recover(junk, sizeof junk);
    EXPECT_FALSE(result.header_ok);
    EXPECT_TRUE(result.records.empty());
    EXPECT_THROW(base::wal_read("wal_test_does_not_exist.wal"),
                 std::runtime_error);
}

TEST(WalSegment, AppendAfterCloseThrows)
{
    const std::string path = temp_path("closed");
    base::wal_writer writer(path, 1);
    writer.close();
    const std::uint8_t byte = 0;
    EXPECT_THROW(writer.append(1, &byte, 1), std::logic_error);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Fault injection: torn writes.
// ---------------------------------------------------------------------

TEST(WalFaults, TruncationAtEveryByteOffset)
{
    // Chop the segment at EVERY byte offset -- inside the header,
    // inside any frame, on any boundary -- and demand exactly the
    // records whose frames end at or before the cut.
    const written_segment seg =
        write_segment(temp_path("trunc"), 30, test::fixture_seed(2));
    std::remove(temp_path("trunc").c_str());
    const std::vector<std::size_t> ends = frame_ends(seg);

    for (std::size_t cut = 0; cut <= seg.image.size(); ++cut) {
        const base::wal_read_result result =
            base::wal_recover(seg.image.data(), cut);
        std::size_t expect = 0;
        while (expect < ends.size() && ends[expect] <= cut) {
            ++expect;
        }
        if (cut < base::wal_header_bytes) {
            EXPECT_FALSE(result.header_ok) << "cut at " << cut;
            EXPECT_TRUE(result.records.empty()) << "cut at " << cut;
            continue;
        }
        EXPECT_TRUE(result.header_ok) << "cut at " << cut;
        ASSERT_EQ(result.records.size(), expect) << "cut at " << cut;
        for (std::size_t i = 0; i < expect; ++i) {
            EXPECT_EQ(result.records[i], seg.records[i])
                << "cut at " << cut << ", record " << i;
        }
        // A cut landing exactly on a frame (or header) boundary leaves
        // no torn tail, so recovery reports it clean; anywhere else the
        // partial frame is the dirty tail.
        const bool on_boundary = cut == base::wal_header_bytes
            || (expect > 0 && ends[expect - 1] == cut);
        EXPECT_EQ(result.clean, on_boundary) << "cut at " << cut;
        // Recovery never claims bytes past the cut.
        EXPECT_LE(result.valid_bytes, cut) << "cut at " << cut;
    }
}

// ---------------------------------------------------------------------
// Fault injection: bit flips.
// ---------------------------------------------------------------------

TEST(WalFaults, SingleBitFlipAtEveryBit)
{
    // Flip every single bit of the segment, one at a time.  A flip in
    // the header invalidates the whole segment; a flip anywhere in
    // frame i (its length, CRC, type or payload) truncates recovery to
    // the frames before i; every recovered record is still verbatim.
    const written_segment seg =
        write_segment(temp_path("flip"), 12, test::fixture_seed(3));
    std::remove(temp_path("flip").c_str());
    const std::vector<std::size_t> ends = frame_ends(seg);

    std::vector<std::uint8_t> image = seg.image;
    for (std::size_t byte = 0; byte < image.size(); ++byte) {
        for (unsigned bit = 0; bit < 8; ++bit) {
            image[byte] ^= static_cast<std::uint8_t>(1u << bit);
            const base::wal_read_result result = base::wal_recover(image);
            image[byte] ^= static_cast<std::uint8_t>(1u << bit);

            if (byte < base::wal_header_bytes) {
                EXPECT_FALSE(result.header_ok)
                    << "flip at " << byte << "." << bit;
                EXPECT_TRUE(result.records.empty());
                continue;
            }
            // The first frame whose span contains the damaged byte.
            std::size_t damaged = 0;
            while (damaged < ends.size() && ends[damaged] <= byte) {
                ++damaged;
            }
            EXPECT_TRUE(result.header_ok);
            ASSERT_EQ(result.records.size(), damaged)
                << "flip at " << byte << "." << bit;
            for (std::size_t i = 0; i < damaged; ++i) {
                EXPECT_EQ(result.records[i], seg.records[i])
                    << "flip at " << byte << "." << bit;
            }
            EXPECT_FALSE(result.clean)
                << "flip at " << byte << "." << bit;
        }
    }
}

TEST(WalFaults, RandomBurstCorruption)
{
    // Heavier damage than one bit: overwrite short random bursts at
    // random offsets.  The valid-prefix contract still holds: whatever
    // is recovered is a verbatim prefix of what was written.
    const written_segment seg =
        write_segment(temp_path("burst"), 40, test::fixture_seed(4));
    std::remove(temp_path("burst").c_str());

    std::mt19937_64 rng(test::fixture_seed(5));
    for (unsigned trial = 0; trial < 200; ++trial) {
        std::vector<std::uint8_t> image = seg.image;
        const std::size_t at = static_cast<std::size_t>(
            rng() % (image.size() - base::wal_header_bytes))
            + base::wal_header_bytes;
        const std::size_t burst =
            std::min<std::size_t>(1 + rng() % 16, image.size() - at);
        for (std::size_t i = 0; i < burst; ++i) {
            image[at + i] = static_cast<std::uint8_t>(rng());
        }
        const base::wal_read_result result = base::wal_recover(image);
        ASSERT_LE(result.records.size(), seg.records.size());
        for (std::size_t i = 0; i < result.records.size(); ++i) {
            // A burst that happens to rewrite a frame into another
            // valid frame would need a CRC32C collision; with seeded
            // deterministic damage this stays a strict equality check.
            EXPECT_EQ(result.records[i], seg.records[i])
                << "trial " << trial << ", record " << i;
        }
    }
}

// ---------------------------------------------------------------------
// Bounded writer: drop, never tear.
// ---------------------------------------------------------------------

TEST(WalBounded, DropsWholeRecordsAtTheBound)
{
    const std::string path = temp_path("bounded");
    const std::size_t payload_len = 10;
    const std::uint64_t frame =
        base::wal_frame_overhead + payload_len;
    // Room for the header and exactly three frames.
    const std::uint64_t cap = base::wal_header_bytes + 3 * frame;
    std::vector<std::uint8_t> payload(payload_len, 0x5a);
    {
        base::wal_writer writer(path, 1, cap);
        for (unsigned i = 0; i < 5; ++i) {
            payload[0] = static_cast<std::uint8_t>(i);
            const bool accepted =
                writer.append(2, payload.data(), payload.size());
            EXPECT_EQ(accepted, i < 3) << "append " << i;
        }
        EXPECT_EQ(writer.records_written(), 3u);
        EXPECT_EQ(writer.records_dropped(), 2u);
        EXPECT_EQ(writer.bytes_written(), cap);
    }
    const base::wal_read_result result = base::wal_read(path);
    EXPECT_TRUE(result.header_ok);
    EXPECT_TRUE(result.clean);
    ASSERT_EQ(result.records.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(result.records[i].payload[0],
                  static_cast<std::uint8_t>(i));
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Telemetry record round trips (every record kind the log writes).
// ---------------------------------------------------------------------

core::supervision_event make_event(bool with_confirmation)
{
    core::supervision_event ev;
    ev.sequence = 3;
    ev.window_index = 41;
    ev.kind = with_confirmation
        ? core::supervision_event_kind::confirmed
        : core::supervision_event_kind::escalated;
    ev.dwell = 5;
    ev.from_design = "n=65536 light";
    ev.to_design = "n=65536 high";
    if (with_confirmation) {
        core::confirmation_result conf;
        conf.evidence_windows = 4;
        conf.evidence_bits = 4 * 65536;
        conf.confirmed = true;
        conf.battery.passed = 1;
        conf.battery.failed = 2;
        conf.battery.skipped = 1;
        conf.battery.entries = {
            {1, "frequency", 0.0012207031, true, false},
            {3, "runs", 0.75, true, true},
            {11, "serial P1", 1e-9, true, false},
            {14, "excursions", 0.0, false, false},
        };
        ev.confirmation = std::move(conf);
    }
    return ev;
}

TEST(TelemetryRecords, EventRoundTrip)
{
    for (const bool with_confirmation : {false, true}) {
        const core::supervision_event ev = make_event(with_confirmation);
        base::byte_sink sink;
        core::serialize_event(sink, ev);
        base::byte_cursor cursor(sink.bytes());
        const core::supervision_event back = core::parse_event(cursor);
        EXPECT_TRUE(cursor.exhausted());
        EXPECT_EQ(back, ev);
    }
}

TEST(TelemetryRecords, EventRejectsUnknownKind)
{
    base::byte_sink sink;
    core::serialize_event(sink, make_event(false));
    std::vector<std::uint8_t> bytes = sink.take();
    bytes[16] = 250; // the kind byte, after sequence and window_index
    base::byte_cursor cursor(bytes.data(), bytes.size());
    EXPECT_THROW(core::parse_event(cursor), std::runtime_error);
}

core::supervisor_checkpoint make_checkpoint()
{
    core::supervisor_checkpoint cp;
    cp.state = core::supervision_state::escalated;
    cp.pending_escalation = false;
    cp.clean_streak = 7;
    cp.alarm_history = {false, true, true, false, true};
    cp.alarm_sticky = true;
    cp.windows = 90;
    cp.failures = 11;
    cp.bits = 90 * 65536ULL;
    cp.windows_escalated = 30;
    cp.escalations = 2;
    cp.confirmed_escalations = 1;
    cp.de_escalations = 1;
    cp.has_first_escalation = true;
    cp.first_escalation_window = 12;
    cp.failures_by_test = {{"frequency", 9}, {"runs", 4}};
    cp.evidence_ring.resize(2);
    cp.evidence_ring[0].index = 88;
    cp.evidence_ring[0].words = {0x0123456789abcdefULL, ~0ULL, 0ULL};
    cp.evidence_ring[1].index = 89;
    cp.evidence_ring[1].words = {42, 43, 44};
    cp.events = {make_event(false), make_event(true)};
    cp.monitor_windows = 90;
    return cp;
}

TEST(TelemetryRecords, CheckpointRoundTrip)
{
    const core::supervisor_checkpoint cp = make_checkpoint();
    const std::vector<std::uint8_t> bytes = core::serialize(cp);
    const core::supervisor_checkpoint back = core::parse_checkpoint(bytes);
    EXPECT_EQ(back, cp);
}

TEST(TelemetryRecords, CheckpointRejectsTrailingBytes)
{
    std::vector<std::uint8_t> bytes = core::serialize(make_checkpoint());
    bytes.push_back(0);
    EXPECT_THROW(core::parse_checkpoint(bytes), std::runtime_error);
    bytes.pop_back();
    bytes.pop_back();
    EXPECT_THROW(core::parse_checkpoint(bytes), std::runtime_error);
}

TEST(TelemetryRecords, SupervisorConfigRoundTrip)
{
    core::supervisor_config cfg;
    cfg.baseline = core::paper_design(16, core::tier::light);
    cfg.baseline.double_buffered = true;
    cfg.escalated = core::paper_design(16, core::tier::high);
    cfg.alpha = 0.0005;
    cfg.fail_threshold = 2;
    cfg.policy_window = 6;
    cfg.evidence_windows = 5;
    cfg.dwell_windows = 9;
    cfg.offline_alpha = 0.02;
    cfg.offline_tests =
        nist::battery_selection().with(1).with(3).with(13);
    cfg.offline_min_failures = 3;
    cfg.lane = core::ingest_lane::span;

    base::byte_sink sink;
    core::serialize_config(sink, cfg);
    base::byte_cursor cursor(sink.bytes());
    const core::supervisor_config back =
        core::parse_supervisor_config(cursor);
    EXPECT_TRUE(cursor.exhausted());

    EXPECT_EQ(back.baseline.name, cfg.baseline.name);
    EXPECT_EQ(back.baseline.log2_n, cfg.baseline.log2_n);
    EXPECT_EQ(back.baseline.tests, cfg.baseline.tests);
    EXPECT_EQ(back.baseline.double_buffered,
              cfg.baseline.double_buffered);
    EXPECT_EQ(back.escalated.name, cfg.escalated.name);
    EXPECT_EQ(back.escalated.tests, cfg.escalated.tests);
    EXPECT_EQ(back.alpha, cfg.alpha);
    EXPECT_EQ(back.fail_threshold, cfg.fail_threshold);
    EXPECT_EQ(back.policy_window, cfg.policy_window);
    EXPECT_EQ(back.evidence_windows, cfg.evidence_windows);
    EXPECT_EQ(back.dwell_windows, cfg.dwell_windows);
    EXPECT_EQ(back.offline_alpha, cfg.offline_alpha);
    for (unsigned t = 1; t <= 15; ++t) {
        EXPECT_EQ(back.offline_tests.has(t), cfg.offline_tests.has(t));
    }
    EXPECT_EQ(back.offline_min_failures, cfg.offline_min_failures);
    EXPECT_EQ(back.lane, cfg.lane);
}

} // namespace
