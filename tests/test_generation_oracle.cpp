// Differential tests of the batched generation lane: for every
// adversarial source model, source_model::fill_words (batched
// next_words overrides) must be bit-exact with fill_words_scalar (the
// per-word reference lane) across ragged batch sizes, severity changes,
// interleaved per-bit drains, stacked decorators and the device_source
// wrapper's onset/churn boundaries.  The kernel-side twin of this file
// is test_kernel_oracle.cpp (SIMD vs scalar consumers); this one pins
// the producer side.
#include "trng/device_profile.hpp"
#include "trng/source_model.hpp"
#include "trng/sources.hpp"

#include "support/fixed_seed.hpp"

#include <cstdint>
#include <functional>
#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace {

using namespace otf;
using namespace otf::trng;
using test::fixture_seed;

using model_builder =
    std::function<std::unique_ptr<source_model>(std::uint64_t seed)>;

std::unique_ptr<entropy_source> healthy(std::uint64_t seed)
{
    return std::make_unique<ideal_source>(seed);
}

/// Every model plus stacked decorator pairs, built over an ideal inner.
std::vector<std::pair<std::string, model_builder>> all_models()
{
    return {
        {"rtn",
         [](std::uint64_t s) {
             return std::make_unique<rtn_source>(healthy(s), s + 1);
         }},
        {"rtn long-dwell",
         [](std::uint64_t s) {
             rtn_parameters p;
             p.dwell_on = 8192.0;
             return std::make_unique<rtn_source>(healthy(s), s + 1, p);
         }},
        {"bias-drift",
         [](std::uint64_t s) {
             return std::make_unique<bias_drift_source>(healthy(s), s + 1);
         }},
        {"bias-drift pinned",
         [](std::uint64_t s) {
             // Pins the walk at the half-rail steady state (q = 128),
             // the single-draw fast path in next_words.
             bias_drift_parameters p;
             p.p_out = 1.0;
             p.p_back = 0.0;
             p.max_shift_q = 128;
             return std::make_unique<bias_drift_source>(healthy(s), s + 1,
                                                        p);
         }},
        {"lockin",
         [](std::uint64_t s) {
             return std::make_unique<lockin_source>(healthy(s), s + 1);
         }},
        {"fault",
         [](std::uint64_t s) {
             return std::make_unique<fault_source>(healthy(s), s + 1);
         }},
        {"sram-collapse",
         [](std::uint64_t s) {
             return std::make_unique<entropy_collapse_source>(healthy(s),
                                                              s + 1);
         }},
        {"substitution",
         [](std::uint64_t s) {
             return std::make_unique<substitution_source>(healthy(s),
                                                          s + 1);
         }},
        {"stacked bias-drift<rtn>",
         [](std::uint64_t s) {
             return std::make_unique<bias_drift_source>(
                 std::make_unique<rtn_source>(healthy(s), s + 1), s + 2);
         }},
        {"stacked rtn<sram-collapse>",
         [](std::uint64_t s) {
             return std::make_unique<rtn_source>(
                 std::make_unique<entropy_collapse_source>(healthy(s),
                                                           s + 1),
                 s + 2);
         }},
    };
}

/// Ragged batch lengths covering the splice paths: sub-word carries,
/// exact words, and multi-fetch bulk spans.
constexpr std::size_t kRaggedSizes[] = {1,  2,  3,  5,   7,  13,
                                        31, 64, 65, 100, 131};

TEST(generation_oracle, batched_lane_matches_scalar_lane_ragged)
{
    for (const auto& [name, build] : all_models()) {
        auto batched = build(fixture_seed(60));
        auto scalar = build(fixture_seed(60));
        for (int round = 0; round < 20; ++round) {
            for (const std::size_t n : kRaggedSizes) {
                std::vector<std::uint64_t> got(n, 0);
                std::vector<std::uint64_t> want(n, 0);
                batched->fill_words(got.data(), n);
                scalar->fill_words_scalar(want.data(), n);
                ASSERT_EQ(got, want)
                    << name << " round " << round << " n=" << n;
            }
        }
    }
}

TEST(generation_oracle, severity_changes_apply_between_fills)
{
    // Severity is word-granular: a set_severity between fills must land
    // identically in both lanes, at every boundary the ragged sizes hit.
    const double severities[] = {0.0, 0.25, 0.5, 1.0};
    for (const auto& [name, build] : all_models()) {
        auto batched = build(fixture_seed(61));
        auto scalar = build(fixture_seed(61));
        std::size_t step = 0;
        for (int round = 0; round < 12; ++round) {
            for (const std::size_t n : kRaggedSizes) {
                const double sev = severities[step++ % 4];
                batched->set_severity(sev);
                scalar->set_severity(sev);
                std::vector<std::uint64_t> got(n, 0);
                std::vector<std::uint64_t> want(n, 0);
                batched->fill_words(got.data(), n);
                scalar->fill_words_scalar(want.data(), n);
                ASSERT_EQ(got, want)
                    << name << " severity " << sev << " n=" << n;
            }
        }
    }
}

TEST(generation_oracle, interleaved_bit_and_word_drains_agree)
{
    // Alternating per-bit pulls with batched fills exercises the
    // partial-word splice on both sides of every batch.
    for (const auto& [name, build] : all_models()) {
        auto mixed = build(fixture_seed(62));
        auto oracle = build(fixture_seed(62));
        const std::size_t chunks[] = {3, 64, 1, 128, 61, 192, 7, 320};
        for (const std::size_t bits : chunks) {
            if (bits % 64 == 0) {
                const std::size_t n = bits / 64;
                std::vector<std::uint64_t> got(n, 0);
                mixed->fill_words(got.data(), n);
                for (std::size_t j = 0; j < n; ++j) {
                    std::uint64_t want = 0;
                    for (unsigned b = 0; b < 64; ++b) {
                        want |=
                            static_cast<std::uint64_t>(oracle->next_bit())
                            << b;
                    }
                    ASSERT_EQ(got[j], want)
                        << name << " chunk " << bits << " word " << j;
                }
            } else {
                for (std::size_t i = 0; i < bits; ++i) {
                    ASSERT_EQ(mixed->next_bit(), oracle->next_bit())
                        << name << " chunk " << bits << " bit " << i;
                }
            }
        }
    }
}

TEST(generation_oracle, biased_source_batch_matches_per_bit)
{
    // The biased healthy source overrides fill_words with a batched
    // draw loop; its oracle is the per-bit lane of an identical twin.
    biased_source batched(fixture_seed(63), 0.3);
    biased_source oracle(fixture_seed(63), 0.3);
    for (const std::size_t n : kRaggedSizes) {
        std::vector<std::uint64_t> got(n, 0);
        batched.fill_words(got.data(), n);
        for (std::size_t j = 0; j < n; ++j) {
            std::uint64_t want = 0;
            for (unsigned b = 0; b < 64; ++b) {
                want |= static_cast<std::uint64_t>(oracle.next_bit()) << b;
            }
            ASSERT_EQ(got[j], want) << "n=" << n << " word " << j;
        }
    }
}

device_profile boundary_profile(device_kind kind)
{
    device_profile p;
    p.device = 7;
    p.kind = kind;
    p.seed = fixture_seed(64) + static_cast<std::uint64_t>(kind);
    p.peak_severity = 1.0;
    p.onset_window = 2;
    p.churns = kind == device_kind::healthy;
    p.churn_window = 3;
    p.churn_p_one = 0.48;
    p.rtn_duty = 0.4;
    p.collapse_fraction = 0.75;
    return p;
}

TEST(generation_oracle, device_source_batches_across_onset_and_churn)
{
    // Batched fill_words must stay bit-exact with the per-bit lane even
    // when a batch straddles the device's onset or churn word -- the
    // scheduled transitions must split the batch, not shift it.
    const std::uint64_t window_bits = 256; // 4 words: boundaries land
                                           // inside the ragged batches
    for (std::size_t k = 0; k < device_kind_count; ++k) {
        const auto kind = static_cast<device_kind>(k);
        device_source batched(boundary_profile(kind), window_bits);
        device_source oracle(boundary_profile(kind), window_bits);
        for (int round = 0; round < 10; ++round) {
            for (const std::size_t n : kRaggedSizes) {
                std::vector<std::uint64_t> got(n, 0);
                batched.fill_words(got.data(), n);
                for (std::size_t j = 0; j < n; ++j) {
                    std::uint64_t want = 0;
                    for (unsigned b = 0; b < 64; ++b) {
                        want |=
                            static_cast<std::uint64_t>(oracle.next_bit())
                            << b;
                    }
                    ASSERT_EQ(got[j], want)
                        << to_string(kind) << " round " << round
                        << " n=" << n << " word " << j;
                }
            }
        }
    }
}

} // namespace
