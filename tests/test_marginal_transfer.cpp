// Tests of the interface-reduction option (serial_transfer_marginals):
// the hardware drops the (m-1)- and (m-2)-bit counter files and their
// read ports, and the software derives those counts as cyclic marginals.
// The verdicts must be identical to the paper-faithful configuration on
// the same bits, area and interface must shrink, and the instruction mix
// must shift from READ to ADD.
#include "core/design_config.hpp"
#include "core/monitor.hpp"
#include "trng/sources.hpp"

#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>

namespace {

using namespace otf;

hw::block_config base_config()
{
    return core::paper_design(16, core::tier::high);
}

hw::block_config marginal_config()
{
    hw::block_config cfg = base_config();
    cfg.serial_transfer_marginals = true;
    cfg.name += " (marginal transfer)";
    return cfg;
}

TEST(marginal_transfer, verdicts_identical_to_full_transfer)
{
    trng::ideal_source src(1234);
    const bit_sequence seq = src.generate(1u << 16);

    core::monitor full(base_config(), 0.01);
    core::monitor reduced(marginal_config(), 0.01);
    const auto rep_full = full.test_sequence(seq);
    const auto rep_reduced = reduced.test_sequence(seq);

    ASSERT_EQ(rep_full.software.verdicts.size(),
              rep_reduced.software.verdicts.size());
    for (std::size_t i = 0; i < rep_full.software.verdicts.size(); ++i) {
        const auto& a = rep_full.software.verdicts[i];
        const auto& b = rep_reduced.software.verdicts[i];
        EXPECT_EQ(a.statistic, b.statistic) << a.name;
        EXPECT_EQ(a.pass, b.pass) << a.name;
    }
}

TEST(marginal_transfer, drops_hardware_counters)
{
    const hw::testing_block full(base_config());
    const hw::testing_block reduced(marginal_config());
    // 8 + 4 counters of log2(n)+1 = 17 bits disappear.
    EXPECT_EQ(full.cost().ffs - reduced.cost().ffs, 12u * 17u);
    EXPECT_LT(reduced.cost().luts, full.cost().luts);
}

TEST(marginal_transfer, shrinks_the_interface)
{
    const hw::testing_block full(base_config());
    const hw::testing_block reduced(marginal_config());
    EXPECT_LT(reduced.registers().size(), full.registers().size());
    EXPECT_LT(reduced.registers().total_words(),
              full.registers().total_words());
    EXPECT_LT(reduced.registers().top_level_inputs(),
              full.registers().top_level_inputs());
    // Exactly the 12 marginal counters (2 words each at 17 bits) vanish.
    EXPECT_EQ(full.registers().total_words()
                  - reduced.registers().total_words(),
              24u);
}

TEST(marginal_transfer, trades_reads_for_adds)
{
    trng::ideal_source src(77);
    const bit_sequence seq = src.generate(1u << 16);

    core::monitor full(base_config(), 0.01);
    core::monitor reduced(marginal_config(), 0.01);
    const auto ops_full = full.test_sequence(seq).software.total_ops;
    const auto ops_reduced =
        reduced.test_sequence(seq).software.total_ops;

    EXPECT_LT(ops_reduced.read, ops_full.read);
    EXPECT_GT(ops_reduced.add, ops_full.add);
    // 12 derivations, one multiword add each.
    EXPECT_EQ(ops_full.read - ops_reduced.read, 24u);
}

TEST(marginal_transfer, hardware_refuses_to_serve_dropped_files)
{
    const hw::testing_block reduced(marginal_config());
    EXPECT_THROW((void)reduced.serial()->count(3, 0), std::logic_error);
    EXPECT_NO_THROW((void)reduced.serial()->count(4, 0));
}

TEST(marginal_transfer, equivalence_holds_across_sources)
{
    for (const std::uint64_t seed : {5u, 17u, 99u}) {
        trng::markov_source src(seed, 0.55);
        const bit_sequence seq = src.generate(1u << 16);
        core::monitor full(base_config(), 0.01);
        core::monitor reduced(marginal_config(), 0.01);
        const auto a = full.test_sequence(seq);
        const auto b = reduced.test_sequence(seq);
        EXPECT_EQ(a.software.all_pass, b.software.all_pass)
            << "seed " << seed;
    }
}

} // namespace
