// Tests of the Table I reproduction: the suitability classification must
// match the paper's verdicts and its quantitative columns must be
// internally consistent.
#include "core/suitability.hpp"

#include <algorithm>
#include <cstdint>
#include <gtest/gtest.h>
#include <set>

namespace {

using namespace otf::core;

TEST(suitability, fifteen_rows_in_nist_order)
{
    const auto rows = nist_suitability(16);
    ASSERT_EQ(rows.size(), 15u);
    for (unsigned i = 0; i < 15; ++i) {
        EXPECT_EQ(rows[i].test_number, i + 1);
        EXPECT_FALSE(rows[i].name.empty());
        EXPECT_FALSE(rows[i].reason.empty());
    }
}

TEST(suitability, verdicts_match_paper_table1)
{
    const auto rows = nist_suitability(16);
    const std::set<unsigned> suitable = {1, 2, 3, 4, 7, 8, 11, 12, 13};
    for (const auto& row : rows) {
        EXPECT_EQ(row.hw_suitable, suitable.count(row.test_number) == 1)
            << "test " << row.test_number << " (" << row.name << ")";
    }
}

TEST(suitability, unsuitable_tests_store_or_compute_more)
{
    const auto rows = nist_suitability(16);
    // Every rejected test must be rejected for a measurable reason: heavy
    // software or storage beyond any accepted test's.
    std::uint64_t max_accepted_storage = 0;
    for (const auto& row : rows) {
        if (row.hw_suitable) {
            max_accepted_storage =
                std::max(max_accepted_storage, row.hw_storage_bits);
        }
    }
    for (const auto& row : rows) {
        if (!row.hw_suitable) {
            const bool heavy = row.software == sw_complexity::heavy;
            const bool big = row.hw_storage_bits > max_accepted_storage;
            EXPECT_TRUE(heavy || big) << "test " << row.test_number;
        }
    }
}

TEST(suitability, trick_shared_tests_report_zero_own_hardware)
{
    const auto rows = nist_suitability(16);
    EXPECT_EQ(rows[0].hw_storage_bits, 0u)
        << "frequency derives from the cusum walk";
    EXPECT_EQ(rows[11].hw_storage_bits, 0u)
        << "approximate entropy reuses the serial counters";
}

TEST(suitability, dft_storage_scales_with_n)
{
    const auto at16 = nist_suitability(16);
    const auto at20 = nist_suitability(20);
    EXPECT_GT(at20[5].hw_storage_bits, at16[5].hw_storage_bits)
        << "the DFT must buffer the whole sequence";
}

TEST(suitability, complexity_labels_have_names)
{
    EXPECT_EQ(to_string(sw_complexity::comparisons), "comparisons");
    EXPECT_FALSE(to_string(sw_complexity::heavy).empty());
}

} // namespace
