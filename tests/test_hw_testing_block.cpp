// Tests of the unified testing block: operation protocol, register map
// structure, configuration validation and resource accounting, including
// the paper's four sharing tricks as measurable properties.
#include "core/design_config.hpp"
#include "hw/standalone.hpp"
#include "hw/testing_block.hpp"
#include "trng/sources.hpp"

#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>
#include <string>

namespace {

using namespace otf;
using core::paper_design;
using core::tier;

TEST(protocol, feed_beyond_n_throws)
{
    hw::testing_block block(paper_design(7, tier::light));
    for (int i = 0; i < 128; ++i) {
        block.feed(true);
    }
    EXPECT_THROW(block.feed(true), std::logic_error);
}

TEST(protocol, finish_before_n_throws)
{
    hw::testing_block block(paper_design(7, tier::light));
    block.feed(true);
    EXPECT_THROW(block.finish(), std::logic_error);
}

TEST(protocol, run_rejects_wrong_length)
{
    hw::testing_block block(paper_design(7, tier::light));
    EXPECT_THROW(block.run(bit_sequence(100, true)),
                 std::invalid_argument);
}

TEST(protocol, restart_clears_state_for_next_window)
{
    hw::testing_block block(paper_design(7, tier::medium));
    trng::ideal_source src(3);
    block.run(src.generate(128));
    const std::int64_t first = block.cusum()->s_final();
    block.restart();
    EXPECT_FALSE(block.done());
    EXPECT_EQ(block.bits_consumed(), 0u);

    // An identical second window produces identical counters.
    trng::ideal_source src2(3);
    block.run(src2.generate(128));
    EXPECT_EQ(block.cusum()->s_final(), first);
}

TEST(protocol, done_flag_set_after_finish)
{
    hw::testing_block block(paper_design(7, tier::light));
    trng::ideal_source src(1);
    block.run(src.generate(128));
    EXPECT_TRUE(block.done());
    EXPECT_EQ(block.bits_consumed(), 128u);
}

TEST(register_map, signed_values_sign_extend)
{
    hw::testing_block block(paper_design(7, tier::light));
    block.run(bit_sequence(128, false)); // walk ends at -128
    EXPECT_EQ(block.registers().read_value("cusum.s_final"), -128);
    EXPECT_EQ(block.registers().read_value("cusum.s_min"), -128);
    EXPECT_EQ(block.registers().read_value("cusum.s_max"), 0);
}

TEST(register_map, unknown_name_throws)
{
    hw::testing_block block(paper_design(7, tier::light));
    EXPECT_THROW((void)block.registers().read_value("nonsense"),
                 std::out_of_range);
}

TEST(register_map, grouped_entries_share_one_mux_input)
{
    const hw::testing_block block(paper_design(16, tier::high));
    const hw::register_map& map = block.registers();
    // 28 serial counters arrive through 3 sub-addressed files, the 16
    // block-frequency results through one bank, the 8 template W's through
    // one bank: the top-level mux stays far below the entry count.
    EXPECT_GT(map.size(), 50u);
    EXPECT_LT(map.top_level_inputs(), 25u);
}

TEST(register_map, total_words_counts_multiword_values)
{
    const hw::testing_block block(paper_design(16, tier::light));
    const hw::register_map& map = block.registers();
    unsigned expected = 0;
    for (const auto& e : map.entries()) {
        expected += (e.width + 15) / 16;
    }
    EXPECT_EQ(map.total_words(16), expected);
    EXPECT_LE(map.total_words(32), map.total_words(16));
}

TEST(config_validation, rejects_inconsistent_designs)
{
    hw::block_config cfg = paper_design(16, tier::high);
    cfg.bf_log2_m = 16; // block as long as the sequence
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = paper_design(16, tier::high);
    cfg.lr_v_lo = 9;
    cfg.lr_v_hi = 4;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = paper_design(16, tier::high);
    cfg.t7_template = 0x3FF; // 10 bits into a 9-bit matcher
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(config_validation, apen_requires_serial)
{
    hw::block_config cfg;
    cfg.log2_n = 16;
    cfg.tests = hw::test_set{}
                    .with(hw::test_id::frequency)
                    .with(hw::test_id::approximate_entropy)
                    .with(hw::test_id::cumulative_sums);
    EXPECT_THROW(cfg.validate(), std::invalid_argument)
        << "trick 3: test 12 has no hardware without test 11's counters";
}

TEST(sharing_tricks, no_dedicated_ones_counter)
{
    // Trick 1: the light design's register map exposes the walk triple and
    // no ones counter; N_ones is software-derived.
    const hw::testing_block block(paper_design(16, tier::light));
    for (const auto& e : block.registers().entries()) {
        EXPECT_EQ(e.name.find("ones"), std::string::npos)
            << "found a ones counter: " << e.name;
    }
}

TEST(sharing_tricks, apen_adds_zero_hardware)
{
    // Trick 3: enabling test 12 on top of test 11 changes nothing in
    // hardware.
    hw::block_config with = paper_design(7, tier::medium);
    hw::block_config without = with;
    // Rebuild the test set minus approximate entropy.
    without.tests = hw::test_set{}
                        .with(hw::test_id::frequency)
                        .with(hw::test_id::block_frequency)
                        .with(hw::test_id::runs)
                        .with(hw::test_id::longest_run)
                        .with(hw::test_id::serial)
                        .with(hw::test_id::cumulative_sums);
    const hw::testing_block a(with);
    const hw::testing_block b(without);
    EXPECT_EQ(a.cost().ffs, b.cost().ffs);
    EXPECT_EQ(a.cost().luts, b.cost().luts);
}

TEST(sharing_tricks, template_tests_share_one_shift_register)
{
    // Trick 4: a design with both template tests carries exactly one
    // template window; its FF cost appears once.
    const hw::block_config both = paper_design(16, tier::high);
    const hw::testing_block block(both);
    unsigned windows = 0;
    for (const auto* child : block.children()) {
        if (child->name() == "template_window") {
            ++windows;
        }
    }
    EXPECT_EQ(windows, 1u);
}

TEST(sharing_tricks, block_engines_carry_no_position_counters)
{
    // Trick 2: block boundaries come from the global counter; the
    // block-frequency engine's own state is one epsilon counter plus the
    // bank, nothing else.
    const hw::testing_block block(paper_design(16, tier::light));
    const auto* bf = block.block_frequency();
    ASSERT_NE(bf, nullptr);
    const unsigned eps_width = 12u + 1u; // M = 4096
    EXPECT_EQ(bf->cost().ffs, eps_width)
        << "bank is LUT-RAM at 16 blocks; only the counter holds FFs";
}

TEST(area_model, tiers_are_ordered_within_each_length)
{
    for (const unsigned log2_n : {16u, 20u}) {
        const auto light =
            hw::testing_block(paper_design(log2_n, tier::light)).cost();
        const auto medium =
            hw::testing_block(paper_design(log2_n, tier::medium)).cost();
        const auto high =
            hw::testing_block(paper_design(log2_n, tier::high)).cost();
        EXPECT_LT(light.ffs, medium.ffs) << "n=2^" << log2_n;
        EXPECT_LT(medium.ffs, high.ffs) << "n=2^" << log2_n;
        EXPECT_LT(light.luts, high.luts) << "n=2^" << log2_n;
    }
}

TEST(area_model, area_grows_with_sequence_length)
{
    const auto small =
        hw::testing_block(paper_design(16, tier::light)).cost();
    const auto large =
        hw::testing_block(paper_design(20, tier::light)).cost();
    EXPECT_LT(small.ffs, large.ffs);
}

TEST(area_model, paper_frequency_claim_holds)
{
    // "All our implementations on FPGA have a maximum working frequency
    // larger than 100 MHz."
    for (const auto& cfg : core::all_paper_designs()) {
        const hw::testing_block block(cfg);
        const auto fpga = rtl::estimate_spartan6(block.cost());
        EXPECT_GT(fpga.max_freq_mhz, 100.0) << cfg.name;
    }
}

TEST(area_model, audit_covers_all_engines)
{
    const hw::testing_block block(paper_design(16, tier::high));
    const std::string audit = rtl::resource_audit(block);
    for (const char* name :
         {"cusum", "runs", "block_frequency", "longest_run",
          "non_overlapping_template", "overlapping_template", "serial",
          "readout_mux", "global_bit_counter"}) {
        EXPECT_NE(audit.find(name), std::string::npos) << name;
    }
}

// -------------------------------------- on-the-fly reconfiguration --

/// Feed one full window into `block` from `source`, word lane or per-bit
/// oracle lane, and finish.
void run_window(hw::testing_block& block, trng::ideal_source& source,
                bool word_lane)
{
    const std::uint64_t n = block.config().n();
    if (word_lane && n >= 64) {
        std::vector<std::uint64_t> words(
            static_cast<std::size_t>(n / 64));
        source.fill_words(words.data(), words.size());
        block.run_words(words);
    } else {
        for (std::uint64_t i = 0; i < n; ++i) {
            block.feed(source.next_bit());
        }
        block.finish();
    }
}

/// Every mapped value of `a` equals the same-named value of `b`.
void expect_registers_equal(const hw::testing_block& a,
                            const hw::testing_block& b,
                            const std::string& label)
{
    const hw::register_map& ma = a.registers();
    const hw::register_map& mb = b.registers();
    ASSERT_EQ(ma.size(), mb.size()) << label;
    for (std::size_t i = 0; i < ma.size(); ++i) {
        EXPECT_EQ(ma.entry(i).name, mb.entry(i).name) << label;
        EXPECT_EQ(ma.read_raw(i), mb.read_raw(i))
            << label << ": " << ma.entry(i).name;
    }
}

TEST(reconfigure, reprogrammed_block_is_register_exact_with_fresh)
{
    // The acceptance pin: a testing block reprogrammed via the register
    // map to design D matches a freshly constructed D on the same
    // subsequent words -- across all 8 paper designs x both lanes.
    const auto designs = core::all_paper_designs();
    for (const bool word_lane : {true, false}) {
        for (std::size_t t = 0; t < designs.size(); ++t) {
            // Escalate/de-escalate between neighbouring design points.
            const hw::block_config& from =
                designs[(t + 1) % designs.size()];
            const hw::block_config& to = designs[t];

            hw::testing_block reprogrammed(from);
            reprogrammed.reprogram(to);
            EXPECT_EQ(reprogrammed.config().name, to.name);
            EXPECT_EQ(reprogrammed.reconfigurations(), 1u);
            hw::testing_block fresh(to);

            trng::ideal_source source_a(0xD0 + t), source_b(0xD0 + t);
            run_window(reprogrammed, source_a, word_lane);
            run_window(fresh, source_b, word_lane);
            expect_registers_equal(reprogrammed, fresh,
                                   to.name
                                       + (word_lane ? " (word)"
                                                    : " (per-bit)"));
        }
    }
}

TEST(reconfigure, mid_sequence_strobe_throws)
{
    hw::testing_block block(paper_design(7, tier::light));
    block.feed(true);
    EXPECT_THROW(block.reprogram(paper_design(7, tier::medium)),
                 std::logic_error);
    // The failed strobe must not have changed the live design.
    EXPECT_EQ(block.config().name, "n=128 light");
    EXPECT_EQ(block.reconfigurations(), 0u);
}

TEST(reconfigure, window_boundary_strobe_is_legal)
{
    hw::testing_block block(paper_design(7, tier::light));
    trng::ideal_source source(3);
    run_window(block, source, false);
    block.restart(); // boundary: 0 bits of the next window consumed
    block.reprogram(paper_design(7, tier::medium));
    EXPECT_EQ(block.config().name, "n=128 medium");
    EXPECT_TRUE(block.config().tests.has(hw::test_id::serial));
}

TEST(reconfigure, invalid_staged_design_throws_and_keeps_the_block)
{
    hw::testing_block block(paper_design(7, tier::light));
    hw::block_config bad = paper_design(7, tier::light);
    bad.bf_log2_m = 30; // block longer than the sequence
    EXPECT_THROW(block.reprogram(bad), std::invalid_argument);
    EXPECT_EQ(block.reconfigurations(), 0u);
    // The block still works at the original design.
    trng::ideal_source source(4);
    run_window(block, source, true);
    EXPECT_TRUE(block.done());
}

TEST(reconfigure, boundary_parameter_values_survive_the_bus)
{
    // Every register width must cover its validated domain: a target
    // the constructor accepts must reprogram without truncation.
    hw::block_config target = paper_design(16, tier::medium);
    target.name = "boundary";
    target.template_length = 16; // validate() accepts [1, 16]
    target.t7_template = 0xFFFF;
    target.lr_v_lo = 60;
    target.lr_v_hi = 127; // up to 2^lr_log2_m (= 128 here)
    target.validate();

    hw::testing_block block(paper_design(7, tier::light));
    block.reprogram(target);
    EXPECT_EQ(block.config().template_length, 16u);
    EXPECT_EQ(block.config().t7_template, 0xFFFFu);
    EXPECT_EQ(block.config().lr_v_lo, 60u);
    EXPECT_EQ(block.config().lr_v_hi, 127u);

    // And the reprogrammed block still matches fresh construction.
    hw::testing_block fresh(target);
    trng::ideal_source source_a(0xB0), source_b(0xB0);
    run_window(block, source_a, true);
    run_window(fresh, source_b, true);
    expect_registers_equal(block, fresh, "boundary");
}

TEST(reconfigure, control_plane_stages_and_reads_back)
{
    hw::testing_block block(paper_design(7, tier::light));
    hw::register_map& map = block.registers();
    EXPECT_GT(map.control_count(), 0u);
    // Reads return the staged values (initially the live design).
    EXPECT_EQ(map.read_control("cfg.log2_n"), 7u);
    map.write_control("cfg.log2_n", 16);
    EXPECT_EQ(map.read_control("cfg.log2_n"), 16u);
    // Staging alone changes nothing until the strobe.
    EXPECT_EQ(block.config().log2_n, 7u);
    map.write_control("ctrl.reconfigure", 1);
    EXPECT_EQ(block.config().log2_n, 16u);
    EXPECT_EQ(block.reconfigurations(), 1u);
}

TEST(reconfigure, control_plane_does_not_touch_result_accounting)
{
    // The write path must not perturb the Table III interface numbers:
    // controls live on the peripheral write bus, not behind the readout
    // mux, so they appear in control_count() only -- never among the
    // result-plane entries that size() / top_level_inputs() /
    // total_words() account for.
    const hw::testing_block block(paper_design(16, tier::high));
    const hw::register_map& map = block.registers();
    EXPECT_EQ(map.control_count(), 15u);
    for (const hw::map_entry& e : map.entries()) {
        EXPECT_EQ(e.name.rfind("cfg.", 0), std::string::npos) << e.name;
        EXPECT_EQ(e.name.rfind("ctrl.", 0), std::string::npos) << e.name;
    }
    for (const hw::control_entry& c : map.controls()) {
        EXPECT_TRUE(c.name.rfind("cfg.", 0) == 0
                    || c.name.rfind("ctrl.", 0) == 0)
            << c.name;
    }
}

} // namespace
