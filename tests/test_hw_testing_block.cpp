// Tests of the unified testing block: operation protocol, register map
// structure, configuration validation and resource accounting, including
// the paper's four sharing tricks as measurable properties.
#include "core/design_config.hpp"
#include "hw/standalone.hpp"
#include "hw/testing_block.hpp"
#include "trng/sources.hpp"

#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>
#include <string>

namespace {

using namespace otf;
using core::paper_design;
using core::tier;

TEST(protocol, feed_beyond_n_throws)
{
    hw::testing_block block(paper_design(7, tier::light));
    for (int i = 0; i < 128; ++i) {
        block.feed(true);
    }
    EXPECT_THROW(block.feed(true), std::logic_error);
}

TEST(protocol, finish_before_n_throws)
{
    hw::testing_block block(paper_design(7, tier::light));
    block.feed(true);
    EXPECT_THROW(block.finish(), std::logic_error);
}

TEST(protocol, run_rejects_wrong_length)
{
    hw::testing_block block(paper_design(7, tier::light));
    EXPECT_THROW(block.run(bit_sequence(100, true)),
                 std::invalid_argument);
}

TEST(protocol, restart_clears_state_for_next_window)
{
    hw::testing_block block(paper_design(7, tier::medium));
    trng::ideal_source src(3);
    block.run(src.generate(128));
    const std::int64_t first = block.cusum()->s_final();
    block.restart();
    EXPECT_FALSE(block.done());
    EXPECT_EQ(block.bits_consumed(), 0u);

    // An identical second window produces identical counters.
    trng::ideal_source src2(3);
    block.run(src2.generate(128));
    EXPECT_EQ(block.cusum()->s_final(), first);
}

TEST(protocol, done_flag_set_after_finish)
{
    hw::testing_block block(paper_design(7, tier::light));
    trng::ideal_source src(1);
    block.run(src.generate(128));
    EXPECT_TRUE(block.done());
    EXPECT_EQ(block.bits_consumed(), 128u);
}

TEST(register_map, signed_values_sign_extend)
{
    hw::testing_block block(paper_design(7, tier::light));
    block.run(bit_sequence(128, false)); // walk ends at -128
    EXPECT_EQ(block.registers().read_value("cusum.s_final"), -128);
    EXPECT_EQ(block.registers().read_value("cusum.s_min"), -128);
    EXPECT_EQ(block.registers().read_value("cusum.s_max"), 0);
}

TEST(register_map, unknown_name_throws)
{
    hw::testing_block block(paper_design(7, tier::light));
    EXPECT_THROW((void)block.registers().read_value("nonsense"),
                 std::out_of_range);
}

TEST(register_map, grouped_entries_share_one_mux_input)
{
    const hw::testing_block block(paper_design(16, tier::high));
    const hw::register_map& map = block.registers();
    // 28 serial counters arrive through 3 sub-addressed files, the 16
    // block-frequency results through one bank, the 8 template W's through
    // one bank: the top-level mux stays far below the entry count.
    EXPECT_GT(map.size(), 50u);
    EXPECT_LT(map.top_level_inputs(), 25u);
}

TEST(register_map, total_words_counts_multiword_values)
{
    const hw::testing_block block(paper_design(16, tier::light));
    const hw::register_map& map = block.registers();
    unsigned expected = 0;
    for (const auto& e : map.entries()) {
        expected += (e.width + 15) / 16;
    }
    EXPECT_EQ(map.total_words(16), expected);
    EXPECT_LE(map.total_words(32), map.total_words(16));
}

TEST(config_validation, rejects_inconsistent_designs)
{
    hw::block_config cfg = paper_design(16, tier::high);
    cfg.bf_log2_m = 16; // block as long as the sequence
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = paper_design(16, tier::high);
    cfg.lr_v_lo = 9;
    cfg.lr_v_hi = 4;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = paper_design(16, tier::high);
    cfg.t7_template = 0x3FF; // 10 bits into a 9-bit matcher
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(config_validation, apen_requires_serial)
{
    hw::block_config cfg;
    cfg.log2_n = 16;
    cfg.tests = hw::test_set{}
                    .with(hw::test_id::frequency)
                    .with(hw::test_id::approximate_entropy)
                    .with(hw::test_id::cumulative_sums);
    EXPECT_THROW(cfg.validate(), std::invalid_argument)
        << "trick 3: test 12 has no hardware without test 11's counters";
}

TEST(sharing_tricks, no_dedicated_ones_counter)
{
    // Trick 1: the light design's register map exposes the walk triple and
    // no ones counter; N_ones is software-derived.
    const hw::testing_block block(paper_design(16, tier::light));
    for (const auto& e : block.registers().entries()) {
        EXPECT_EQ(e.name.find("ones"), std::string::npos)
            << "found a ones counter: " << e.name;
    }
}

TEST(sharing_tricks, apen_adds_zero_hardware)
{
    // Trick 3: enabling test 12 on top of test 11 changes nothing in
    // hardware.
    hw::block_config with = paper_design(7, tier::medium);
    hw::block_config without = with;
    // Rebuild the test set minus approximate entropy.
    without.tests = hw::test_set{}
                        .with(hw::test_id::frequency)
                        .with(hw::test_id::block_frequency)
                        .with(hw::test_id::runs)
                        .with(hw::test_id::longest_run)
                        .with(hw::test_id::serial)
                        .with(hw::test_id::cumulative_sums);
    const hw::testing_block a(with);
    const hw::testing_block b(without);
    EXPECT_EQ(a.cost().ffs, b.cost().ffs);
    EXPECT_EQ(a.cost().luts, b.cost().luts);
}

TEST(sharing_tricks, template_tests_share_one_shift_register)
{
    // Trick 4: a design with both template tests carries exactly one
    // template window; its FF cost appears once.
    const hw::block_config both = paper_design(16, tier::high);
    const hw::testing_block block(both);
    unsigned windows = 0;
    for (const auto* child : block.children()) {
        if (child->name() == "template_window") {
            ++windows;
        }
    }
    EXPECT_EQ(windows, 1u);
}

TEST(sharing_tricks, block_engines_carry_no_position_counters)
{
    // Trick 2: block boundaries come from the global counter; the
    // block-frequency engine's own state is one epsilon counter plus the
    // bank, nothing else.
    const hw::testing_block block(paper_design(16, tier::light));
    const auto* bf = block.block_frequency();
    ASSERT_NE(bf, nullptr);
    const unsigned eps_width = 12u + 1u; // M = 4096
    EXPECT_EQ(bf->cost().ffs, eps_width)
        << "bank is LUT-RAM at 16 blocks; only the counter holds FFs";
}

TEST(area_model, tiers_are_ordered_within_each_length)
{
    for (const unsigned log2_n : {16u, 20u}) {
        const auto light =
            hw::testing_block(paper_design(log2_n, tier::light)).cost();
        const auto medium =
            hw::testing_block(paper_design(log2_n, tier::medium)).cost();
        const auto high =
            hw::testing_block(paper_design(log2_n, tier::high)).cost();
        EXPECT_LT(light.ffs, medium.ffs) << "n=2^" << log2_n;
        EXPECT_LT(medium.ffs, high.ffs) << "n=2^" << log2_n;
        EXPECT_LT(light.luts, high.luts) << "n=2^" << log2_n;
    }
}

TEST(area_model, area_grows_with_sequence_length)
{
    const auto small =
        hw::testing_block(paper_design(16, tier::light)).cost();
    const auto large =
        hw::testing_block(paper_design(20, tier::light)).cost();
    EXPECT_LT(small.ffs, large.ffs);
}

TEST(area_model, paper_frequency_claim_holds)
{
    // "All our implementations on FPGA have a maximum working frequency
    // larger than 100 MHz."
    for (const auto& cfg : core::all_paper_designs()) {
        const hw::testing_block block(cfg);
        const auto fpga = rtl::estimate_spartan6(block.cost());
        EXPECT_GT(fpga.max_freq_mhz, 100.0) << cfg.name;
    }
}

TEST(area_model, audit_covers_all_engines)
{
    const hw::testing_block block(paper_design(16, tier::high));
    const std::string audit = rtl::resource_audit(block);
    for (const char* name :
         {"cusum", "runs", "block_frequency", "longest_run",
          "non_overlapping_template", "overlapping_template", "serial",
          "readout_mux", "global_bit_counter"}) {
        EXPECT_NE(audit.find(name), std::string::npos) << name;
    }
}

} // namespace
