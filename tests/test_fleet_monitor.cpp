// Tests of the multi-channel fleet monitor: determinism across thread
// counts and ingestion lanes, telemetry aggregation, per-channel alarm
// policy, and configuration validation.
#include "core/design_config.hpp"
#include "core/fleet_monitor.hpp"
#include "trng/sources.hpp"

#include "support/fixed_seed.hpp"

#include <gtest/gtest.h>
#include <memory>
#include <stdexcept>
#include <string>

namespace {

using namespace otf;
using test::fixture_seed;

hw::block_config small_design()
{
    // 4096-bit all-tests design: full engine coverage, fast windows.
    return core::custom_design(
        12, hw::test_set{}
                .with(hw::test_id::frequency)
                .with(hw::test_id::block_frequency)
                .with(hw::test_id::runs)
                .with(hw::test_id::longest_run)
                .with(hw::test_id::non_overlapping_template)
                .with(hw::test_id::overlapping_template)
                .with(hw::test_id::serial)
                .with(hw::test_id::approximate_entropy)
                .with(hw::test_id::cumulative_sums));
}

core::fleet_config
base_config(unsigned channels, unsigned threads,
            core::ingest_lane lane = core::ingest_lane::word)
{
    core::fleet_config cfg;
    cfg.block = small_design();
    cfg.block.double_buffered = true;
    cfg.alpha = 0.01;
    cfg.channels = channels;
    cfg.threads = threads;
    cfg.lane = lane;
    return cfg;
}

core::fleet_monitor::source_factory ideal_factory()
{
    return [](unsigned c) {
        return std::make_unique<trng::ideal_source>(fixture_seed(c));
    };
}

TEST(fleet, report_is_independent_of_thread_count)
{
    const std::uint64_t windows = 6;
    const auto baseline =
        core::fleet_monitor(base_config(6, 1)).run(ideal_factory(),
                                                   windows);
    for (const unsigned threads : {2u, 3u, 6u, 16u}) {
        const auto report = core::fleet_monitor(base_config(6, threads))
                                .run(ideal_factory(), windows);
        EXPECT_TRUE(baseline.same_counters(report))
            << "thread count " << threads
            << " changed the aggregated report";
        ASSERT_EQ(baseline.channels.size(), report.channels.size());
        for (std::size_t c = 0; c < baseline.channels.size(); ++c) {
            EXPECT_EQ(baseline.channels[c], report.channels[c])
                << "channel " << c << " at thread count " << threads;
        }
    }
}

TEST(fleet, every_ingest_lane_agrees_with_the_per_bit_oracle)
{
    const std::uint64_t windows = 4;
    const auto bit =
        core::fleet_monitor(base_config(4, 2, core::ingest_lane::per_bit))
            .run(ideal_factory(), windows);
    for (const core::ingest_lane lane :
         {core::ingest_lane::word, core::ingest_lane::span,
          core::ingest_lane::sliced}) {
        const auto fast = core::fleet_monitor(base_config(4, 2, lane))
                              .run(ideal_factory(), windows);
        EXPECT_TRUE(fast.same_counters(bit));
        ASSERT_EQ(fast.channels.size(), bit.channels.size());
        for (std::size_t c = 0; c < fast.channels.size(); ++c) {
            EXPECT_EQ(fast.channels[c], bit.channels[c])
                << "channel " << c;
        }
    }
}

TEST(fleet, totals_aggregate_the_channels)
{
    const std::uint64_t windows = 3;
    const auto report = core::fleet_monitor(base_config(5, 2))
                            .run(ideal_factory(), windows);
    ASSERT_EQ(report.channels.size(), 5u);
    std::uint64_t windows_sum = 0;
    std::uint64_t failures_sum = 0;
    std::uint64_t bits_sum = 0;
    unsigned alarms = 0;
    for (const auto& ch : report.channels) {
        EXPECT_EQ(ch.windows, windows);
        EXPECT_EQ(ch.bits, windows * small_design().n());
        EXPECT_GT(ch.sw_cycles, 0u);
        EXPECT_LE(ch.worst_sw_cycles, ch.sw_cycles);
        windows_sum += ch.windows;
        failures_sum += ch.failures;
        bits_sum += ch.bits;
        alarms += ch.alarm ? 1 : 0;
    }
    EXPECT_EQ(report.windows, windows_sum);
    EXPECT_EQ(report.failures, failures_sum);
    EXPECT_EQ(report.bits, bits_sum);
    EXPECT_EQ(report.channels_in_alarm, alarms);
    EXPECT_GT(report.seconds, 0.0);
    EXPECT_GT(report.bits_per_second(), 0.0);
}

TEST(fleet, degraded_channel_raises_only_its_own_alarm)
{
    auto cfg = base_config(3, 2);
    cfg.fail_threshold = 3;
    cfg.policy_window = 8;
    const auto factory =
        [](unsigned c) -> std::unique_ptr<trng::entropy_source> {
        if (c == 1) {
            return std::make_unique<trng::stuck_source>(true);
        }
        return std::make_unique<trng::ideal_source>(fixture_seed(c));
    };
    const auto report =
        core::fleet_monitor(cfg).run(factory, 8);
    EXPECT_FALSE(report.channels[0].alarm);
    EXPECT_TRUE(report.channels[1].alarm);
    EXPECT_FALSE(report.channels[2].alarm);
    EXPECT_EQ(report.channels_in_alarm, 1u);
    EXPECT_EQ(report.channels[1].failures, 8u);
    EXPECT_FALSE(report.channels[1].failures_by_test.empty());
    EXPECT_EQ(report.channels[1].source_name, "stuck-at-1");
}

TEST(fleet, channel_reports_keep_channel_order)
{
    const auto report = core::fleet_monitor(base_config(4, 4))
                            .run(ideal_factory(), 2);
    for (std::size_t c = 0; c < report.channels.size(); ++c) {
        EXPECT_EQ(report.channels[c].channel, c);
    }
}

TEST(fleet, zero_windows_returns_an_empty_report)
{
    // windows_per_channel == 0 must come back immediately with zeroed
    // channels -- it must not be mistaken for the producer's open-ended
    // mode (total_words == 0), which would never close the ring.
    const auto report =
        core::fleet_monitor(base_config(3, 2)).run(ideal_factory(), 0);
    EXPECT_EQ(report.windows, 0u);
    EXPECT_EQ(report.bits, 0u);
    ASSERT_EQ(report.channels.size(), 3u);
    for (const auto& ch : report.channels) {
        EXPECT_EQ(ch.windows, 0u);
        EXPECT_FALSE(ch.alarm);
    }
}

TEST(fleet, sub_word_designs_fall_back_to_the_batch_loop)
{
    // n < 64 cannot ride the word-granular ring; the per-bit lane must
    // keep working through the direct loop (and both lanes must agree
    // with a plain monitor run).
    hw::block_config tiny;
    tiny.name = "tiny n=32";
    tiny.log2_n = 5;
    tiny.tests = hw::test_set{}
                     .with(hw::test_id::frequency)
                     .with(hw::test_id::cumulative_sums);
    core::fleet_config cfg;
    cfg.block = tiny;
    cfg.channels = 2;
    cfg.threads = 1;
    cfg.lane = core::ingest_lane::per_bit;
    const auto report =
        core::fleet_monitor(cfg).run(ideal_factory(), 4);
    ASSERT_EQ(report.channels.size(), 2u);
    EXPECT_EQ(report.windows, 8u);
    EXPECT_EQ(report.bits, 8u * 32u);

    core::monitor ref(tiny, cfg.alpha);
    trng::ideal_source ref_src(fixture_seed(0));
    std::uint64_t ref_failures = 0;
    for (int w = 0; w < 4; ++w) {
        ref_failures +=
            ref.test_window(ref_src).software.all_pass ? 0 : 1;
    }
    EXPECT_EQ(report.channels[0].failures, ref_failures);
}

TEST(fleet, first_alarm_window_is_stamped_alike_by_batch_and_stream)
{
    // The sub-word batch loop bypasses the window_pump, but both lanes
    // take their window numbering from the monitor's own counter through
    // the shared observe() path -- so a channel failing from the first
    // window must stamp the same 0-based first_alarm_window whether it
    // rode the n=32 batch loop or the n=4096 streamed pipeline.  Pin both
    // against the policy replayed by hand.
    hw::block_config tiny;
    tiny.name = "tiny n=32";
    tiny.log2_n = 5;
    tiny.tests = hw::test_set{}
                     .with(hw::test_id::frequency)
                     .with(hw::test_id::cumulative_sums);
    core::fleet_config tiny_cfg;
    tiny_cfg.block = tiny;
    tiny_cfg.alpha = 0.01;
    tiny_cfg.channels = 2;
    tiny_cfg.threads = 1;
    tiny_cfg.lane = core::ingest_lane::per_bit;
    tiny_cfg.fail_threshold = 2;
    tiny_cfg.policy_window = 8;
    const std::uint64_t windows = 6;
    const auto factory =
        [](unsigned c) -> std::unique_ptr<trng::entropy_source> {
        if (c == 0) {
            return std::make_unique<trng::stuck_source>(true);
        }
        return std::make_unique<trng::ideal_source>(fixture_seed(c));
    };

    // Reference: replay the k-of-w policy over a plain monitor's verdicts.
    core::monitor ref(tiny, tiny_cfg.alpha);
    trng::stuck_source ref_src(true);
    core::windowed_alarm policy(tiny_cfg.fail_threshold,
                                tiny_cfg.policy_window);
    std::uint64_t want = windows; // never-alarmed sentinel
    for (std::uint64_t w = 0; w < windows; ++w) {
        policy.record(!ref.test_window(ref_src).software.all_pass);
        if (policy.rose()) {
            want = w;
        }
    }
    ASSERT_LT(want, windows) << "a stuck source must trip 2-of-8";

    const auto batch = core::fleet_monitor(tiny_cfg).run(factory, windows);
    EXPECT_TRUE(batch.channels[0].alarm);
    EXPECT_EQ(batch.channels[0].first_alarm_window, want);
    EXPECT_FALSE(batch.channels[1].alarm);
    EXPECT_EQ(batch.channels[1].first_alarm_window, windows)
        << "never-alarmed sentinel on the batch lane";

    auto streamed_cfg = base_config(2, 1);
    streamed_cfg.fail_threshold = tiny_cfg.fail_threshold;
    streamed_cfg.policy_window = tiny_cfg.policy_window;
    const auto streamed =
        core::fleet_monitor(streamed_cfg).run(factory, windows);
    EXPECT_TRUE(streamed.channels[0].alarm);
    EXPECT_EQ(streamed.channels[0].first_alarm_window, want)
        << "the streamed lane numbers windows differently";
}

TEST(fleet, configuration_is_validated)
{
    EXPECT_THROW(core::fleet_monitor{base_config(0, 1)},
                 std::invalid_argument);
    auto bad_policy = base_config(2, 1);
    bad_policy.fail_threshold = 0;
    EXPECT_THROW(core::fleet_monitor{bad_policy}, std::invalid_argument);
    bad_policy = base_config(2, 1);
    bad_policy.fail_threshold = 9;
    bad_policy.policy_window = 8;
    EXPECT_THROW(core::fleet_monitor{bad_policy}, std::invalid_argument);
}

TEST(fleet, channel_stream_telemetry_is_populated)
{
    // Under threaded execution each channel is one producer → ring →
    // pump pipeline; its report must carry the ring telemetry (words
    // through the ring, capacity) even though those fields are excluded
    // from the determinism comparison.  (The fused default never builds
    // a ring, so this pins the threaded lane explicitly.)
    const std::uint64_t windows = 4;
    auto cfg = base_config(3, 2);
    cfg.execution = core::fleet_execution::threaded;
    const auto report =
        core::fleet_monitor(cfg).run(ideal_factory(), windows);
    const std::uint64_t nwords = small_design().n() / 64;
    for (const auto& ch : report.channels) {
        EXPECT_EQ(ch.stream.words, windows * nwords)
            << "channel " << ch.channel;
        EXPECT_GE(ch.stream.ring_capacity, 2 * nwords)
            << "channel " << ch.channel;
        EXPECT_GE(ch.stream.max_occupancy, 1u) << "channel " << ch.channel;
        EXPECT_LE(ch.stream.max_occupancy, ch.stream.ring_capacity)
            << "channel " << ch.channel;
    }
}

TEST(fleet, ring_depth_never_changes_the_report)
{
    const std::uint64_t windows = 5;
    auto base_cfg = base_config(3, 2);
    base_cfg.execution = core::fleet_execution::threaded;
    const auto baseline =
        core::fleet_monitor(base_cfg).run(ideal_factory(), windows);
    for (const std::size_t ring_words : {64u, 1024u}) {
        auto cfg = base_cfg;
        cfg.ring_words = ring_words;
        const auto report =
            core::fleet_monitor(cfg).run(ideal_factory(), windows);
        EXPECT_TRUE(baseline.same_counters(report))
            << "ring_words " << ring_words;
        ASSERT_EQ(baseline.channels.size(), report.channels.size());
        for (std::size_t c = 0; c < baseline.channels.size(); ++c) {
            EXPECT_EQ(baseline.channels[c], report.channels[c])
                << "channel " << c << " at ring_words " << ring_words;
        }
    }
}

TEST(fleet, worker_exception_propagates_naming_the_channel)
{
    // A replay source that runs dry mid-run now starves the channel's
    // word_producer thread; the failure must cross the producer join,
    // the worker pool and the fleet barrier, still naming the offending
    // channel and its source.
    const auto factory =
        [](unsigned c) -> std::unique_ptr<trng::entropy_source> {
        if (c == 1) {
            return std::make_unique<trng::replay_source>(
                bit_sequence(1024, false)); // far less than one window
        }
        return std::make_unique<trng::ideal_source>(fixture_seed(c));
    };
    core::fleet_monitor fleet(base_config(3, 1));
    try {
        (void)fleet.run(factory, 1);
        FAIL() << "expected the replay exhaustion to propagate";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("channel 1"), std::string::npos) << what;
        EXPECT_NE(what.find("replay"), std::string::npos) << what;
    }
}

TEST(fleet, mid_run_exception_from_a_late_channel_drains_the_fleet)
{
    // The dry channel sits last and runs dry only after several good
    // windows; every worker must drain and join before the rethrow, and
    // the error must name the right channel even with several threads
    // racing.
    const std::uint64_t windows = 6;
    const std::uint64_t n = small_design().n();
    const auto factory =
        [&](unsigned c) -> std::unique_ptr<trng::entropy_source> {
        if (c == 3) {
            trng::ideal_source gen(fixture_seed(99));
            // Three full windows, then mid-window starvation.
            return std::make_unique<trng::replay_source>(
                gen.generate(3 * n + 128));
        }
        return std::make_unique<trng::ideal_source>(fixture_seed(c));
    };
    core::fleet_monitor fleet(base_config(4, 2));
    try {
        (void)fleet.run(factory, windows);
        FAIL() << "expected the mid-run starvation to propagate";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("channel 3"), std::string::npos) << what;
        EXPECT_NE(what.find("ran dry"), std::string::npos) << what;
    }
}

TEST(fleet, failed_channel_error_carries_its_ring_telemetry)
{
    // Regression: run_windows used to snapshot the ring only on the
    // success path, so the backpressure stats that explain a stalled or
    // dried-up pipeline were lost exactly when they mattered.  The error
    // must now carry the stream telemetry of the failed channel.
    const std::uint64_t n = small_design().n();
    const auto factory =
        [&](unsigned c) -> std::unique_ptr<trng::entropy_source> {
        if (c == 0) {
            trng::ideal_source gen(fixture_seed(5));
            // Two full windows, then mid-window starvation.
            return std::make_unique<trng::replay_source>(
                gen.generate(2 * n + 64));
        }
        return std::make_unique<trng::ideal_source>(fixture_seed(c));
    };
    auto cfg = base_config(2, 1);
    cfg.execution = core::fleet_execution::threaded;
    core::fleet_monitor fleet(cfg);
    try {
        (void)fleet.run(factory, 4);
        FAIL() << "expected the starvation to propagate";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("ran dry"), std::string::npos) << what;
        EXPECT_NE(what.find("[stream:"), std::string::npos)
            << "ring telemetry missing from the failure: " << what;
        // The replay carried two whole windows plus a partial one; all of
        // it went through the ring before the pipeline died.
        EXPECT_NE(what.find("words=" + std::to_string(2 * n / 64 + 1)),
                  std::string::npos)
            << what;
    }
}

TEST(fleet, null_source_factory_result_names_the_channel)
{
    const auto factory =
        [](unsigned c) -> std::unique_ptr<trng::entropy_source> {
        if (c == 2) {
            return nullptr;
        }
        return std::make_unique<trng::ideal_source>(fixture_seed(c));
    };
    core::fleet_monitor fleet(base_config(4, 2));
    try {
        (void)fleet.run(factory, 1);
        FAIL() << "expected the null source to be rejected";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("channel 2"),
                  std::string::npos)
            << e.what();
    }
}

// --------------------------------------- fused vs threaded execution --

TEST(fleet, fused_and_threaded_executions_are_bit_identical)
{
    // The fused worker lanes (generate + test inline on one core, no
    // ring, no producer thread) must be indistinguishable from the
    // threaded producer/ring pipeline in every deterministic report
    // field -- for every ingest lane, at every thread count, against
    // the per-bit oracle.
    const std::uint64_t windows = 4;
    const auto oracle =
        core::fleet_monitor(base_config(4, 1, core::ingest_lane::per_bit))
            .run(ideal_factory(), windows);
    for (const core::ingest_lane lane :
         {core::ingest_lane::word, core::ingest_lane::span}) {
        for (const unsigned threads : {1u, 2u, 4u}) {
            for (const core::fleet_execution execution :
                 {core::fleet_execution::fused,
                  core::fleet_execution::threaded}) {
                auto cfg = base_config(4, threads, lane);
                cfg.execution = execution;
                const auto report =
                    core::fleet_monitor(cfg).run(ideal_factory(),
                                                 windows);
                const std::string ctx =
                    std::string(core::to_string(execution)) + " lane "
                    + cfg.lane_description() + " threads "
                    + std::to_string(threads);
                EXPECT_TRUE(report.same_counters(oracle)) << ctx;
                ASSERT_EQ(report.channels.size(), oracle.channels.size());
                for (std::size_t c = 0; c < report.channels.size(); ++c) {
                    EXPECT_EQ(report.channels[c], oracle.channels[c])
                        << ctx << " channel " << c;
                }
            }
        }
    }
}

TEST(fleet, fused_tile_lane_matches_threaded_and_the_per_bit_oracle)
{
    // 66 channels: one full 64-wide group riding the 64x64 tile
    // pipeline (fill_tile -> one transpose per tile -> feed_tile) plus
    // two span leftovers.  The same config under threaded execution
    // degrades to span-over-rings; the per-bit lane is the oracle.  All
    // three must produce byte-identical channel reports at every thread
    // count.
    const unsigned channels = 66;
    const std::uint64_t windows = 4;
    const auto design = core::custom_design(
        10, hw::test_set{}
                .with(hw::test_id::frequency)
                .with(hw::test_id::runs));
    const auto make_cfg = [&](core::ingest_lane lane, unsigned threads) {
        core::fleet_config cfg;
        cfg.block = design;
        cfg.alpha = 0.01;
        cfg.channels = channels;
        cfg.threads = threads;
        cfg.lane = lane;
        return cfg;
    };
    const auto oracle =
        core::fleet_monitor(make_cfg(core::ingest_lane::per_bit, 2))
            .run(ideal_factory(), windows);
    // The sliced lane reports sw_cycles on its own scale (one sliced
    // pass covers 64 channels), so the byte-identity guarantee covers
    // every field except the two cycle counters.
    const auto strip_cycles = [](core::channel_report ch) {
        ch.sw_cycles = 0;
        ch.worst_sw_cycles = 0;
        return ch;
    };
    for (const unsigned threads : {1u, 2u, 4u}) {
        auto fused = make_cfg(core::ingest_lane::sliced, threads);
        ASSERT_TRUE(fused.uses_sliced_lane());
        EXPECT_EQ(fused.lane_description(), "sliced+span");
        auto threaded = fused;
        threaded.execution = core::fleet_execution::threaded;
        EXPECT_FALSE(threaded.uses_sliced_lane())
            << "the tile lane is part of the fused execution model";
        for (const core::fleet_config& cfg : {fused, threaded}) {
            const auto report =
                core::fleet_monitor(cfg).run(ideal_factory(), windows);
            const std::string ctx = report.execution + "/" + report.lane
                + " threads " + std::to_string(threads);
            EXPECT_EQ(report.windows, oracle.windows) << ctx;
            EXPECT_EQ(report.failures, oracle.failures) << ctx;
            EXPECT_EQ(report.bits, oracle.bits) << ctx;
            EXPECT_EQ(report.channels_in_alarm, oracle.channels_in_alarm)
                << ctx;
            EXPECT_EQ(report.failures_by_test, oracle.failures_by_test)
                << ctx;
            ASSERT_EQ(report.channels.size(), oracle.channels.size());
            for (std::size_t c = 0; c < report.channels.size(); ++c) {
                EXPECT_EQ(strip_cycles(report.channels[c]),
                          strip_cycles(oracle.channels[c]))
                    << ctx << " channel " << c;
            }
        }
    }
}

TEST(fleet, execution_and_lane_metadata_are_reported)
{
    // The report must say which execution model and ingest lane
    // actually ran, and how many threads of each kind were spawned --
    // in particular the sliced->span fallback that used to be silent.
    const std::uint64_t windows = 2;
    auto cfg = base_config(3, 2);
    const auto fused =
        core::fleet_monitor(cfg).run(ideal_factory(), windows);
    EXPECT_EQ(fused.execution, "fused");
    EXPECT_EQ(fused.lane, "word");
    EXPECT_EQ(fused.worker_threads, 2u);
    EXPECT_EQ(fused.producer_threads, 0u)
        << "the fused execution must not spawn producer threads";

    cfg.execution = core::fleet_execution::threaded;
    const auto threaded =
        core::fleet_monitor(cfg).run(ideal_factory(), windows);
    EXPECT_EQ(threaded.execution, "threaded");
    EXPECT_EQ(threaded.producer_threads, 3u)
        << "one producer per streamed channel";

    const auto fallback = base_config(3, 1, core::ingest_lane::sliced);
    const auto degraded =
        core::fleet_monitor(fallback).run(ideal_factory(), windows);
    EXPECT_EQ(degraded.lane, "span (sliced fallback)")
        << "too few channels for a tile group must be visible";
}

// ------------------------------------------- per-channel supervision --

core::fleet_config supervised_config(unsigned channels, unsigned threads)
{
    core::fleet_config cfg;
    cfg.block = core::paper_design(7, core::tier::light);
    cfg.alpha = 0.001;
    cfg.channels = channels;
    cfg.threads = threads;
    cfg.fail_threshold = 2;
    cfg.policy_window = 4;
    cfg.escalated_block = core::paper_design(7, core::tier::medium);
    cfg.evidence_windows = 4;
    cfg.dwell_windows = 1000; // stay escalated once triggered
    return cfg;
}

core::fleet_monitor::source_factory one_bad_channel(unsigned bad)
{
    return [bad](unsigned c) -> std::unique_ptr<trng::entropy_source> {
        if (c == bad) {
            return std::make_unique<trng::biased_source>(fixture_seed(c),
                                                         0.95);
        }
        return std::make_unique<trng::ideal_source>(fixture_seed(c));
    };
}

TEST(fleet_supervision, only_the_attacked_channel_escalates)
{
    core::fleet_monitor fleet(supervised_config(3, 2));
    const auto report = fleet.run(one_bad_channel(2), 24);

    EXPECT_EQ(report.channels_escalated, 1u);
    EXPECT_EQ(report.escalations, 1u);
    for (const core::channel_report& ch : report.channels) {
        if (ch.channel == 2) {
            EXPECT_EQ(ch.escalations, 1u);
            EXPECT_EQ(ch.confirmed_escalations, 1u)
                << "the offline battery must confirm a 95%-ones stream";
            EXPECT_GT(ch.windows_escalated, 0u);
            EXPECT_TRUE(ch.alarm);
            EXPECT_LT(ch.first_alarm_window, 4u);
        } else {
            EXPECT_EQ(ch.escalations, 0u) << "channel " << ch.channel;
            EXPECT_EQ(ch.windows_escalated, 0u);
            EXPECT_EQ(ch.first_alarm_window, ch.windows)
                << "never-alarmed sentinel";
        }
    }
}

TEST(fleet_supervision, report_is_independent_of_thread_count)
{
    const auto run_with = [](unsigned threads) {
        core::fleet_monitor fleet(supervised_config(4, threads));
        return fleet.run(one_bad_channel(1), 16);
    };
    const auto serial = run_with(1);
    const auto parallel = run_with(4);
    EXPECT_TRUE(serial.same_counters(parallel));
    ASSERT_EQ(serial.channels.size(), parallel.channels.size());
    for (std::size_t c = 0; c < serial.channels.size(); ++c) {
        EXPECT_EQ(serial.channels[c], parallel.channels[c])
            << "channel " << c;
    }
}

TEST(fleet_supervision, escalated_channels_account_mixed_window_bits)
{
    core::fleet_config cfg = supervised_config(2, 2);
    // Escalate to a 4x longer window so the bit accounting must mix.
    cfg.escalated_block = core::custom_design(
        9, hw::test_set{}
               .with(hw::test_id::frequency)
               .with(hw::test_id::runs)
               .with(hw::test_id::cumulative_sums));
    core::fleet_monitor fleet(cfg);
    const auto report = fleet.run(one_bad_channel(0), 20);

    const core::channel_report& bad = report.channels[0];
    ASSERT_GT(bad.escalations, 0u);
    EXPECT_EQ(bad.bits,
              (bad.windows - bad.windows_escalated) * 128u
                  + bad.windows_escalated * 512u);
    const core::channel_report& good = report.channels[1];
    EXPECT_EQ(good.bits, good.windows * 128u);
}

TEST(fleet_supervision, sub_word_baseline_is_rejected)
{
    core::fleet_config cfg = supervised_config(2, 1);
    cfg.block.log2_n = 5; // n = 32: not streamable, cannot supervise
    EXPECT_THROW(core::fleet_monitor{cfg}, std::invalid_argument);
}

TEST(fleet_supervision, mixed_outcomes_aggregate_channel_by_channel)
{
    // Escalated-but-unconfirmed is a distinct outcome from confirmed and
    // from never-escalated: with the offline bar set out of reach, the
    // attacked channel still escalates online but the confirmation count
    // must stay zero, and every fleet total must equal its channel sum.
    core::fleet_config cfg = supervised_config(3, 2);
    cfg.offline_min_failures = 100; // the offline battery cannot confirm
    const auto report = core::fleet_monitor(cfg).run(one_bad_channel(1), 24);

    unsigned escalations = 0;
    unsigned confirmed = 0;
    unsigned channels_escalated = 0;
    for (const core::channel_report& ch : report.channels) {
        escalations += ch.escalations;
        confirmed += ch.confirmed_escalations;
        channels_escalated += ch.escalations > 0 ? 1 : 0;
        EXPECT_LE(ch.confirmed_escalations, ch.escalations)
            << "channel " << ch.channel;
    }
    EXPECT_EQ(report.escalations, escalations);
    EXPECT_EQ(report.confirmed_escalations, confirmed);
    EXPECT_EQ(report.channels_escalated, channels_escalated);

    EXPECT_GT(report.channels[1].escalations, 0u)
        << "the attacked channel must still escalate online";
    EXPECT_EQ(report.channels[1].confirmed_escalations, 0u)
        << "an unreachable offline bar must never confirm";
    EXPECT_EQ(report.confirmed_escalations, 0u);
    EXPECT_EQ(report.channels_escalated, 1u);
    for (const unsigned good : {0u, 2u}) {
        EXPECT_EQ(report.channels[good].escalations, 0u)
            << "channel " << good;
    }

    // The same fleet with the standard bar confirms: all three outcomes
    // (confirmed, unconfirmed, never-escalated) are distinguishable.
    const auto confirmed_report =
        core::fleet_monitor(supervised_config(3, 2))
            .run(one_bad_channel(1), 24);
    EXPECT_GT(confirmed_report.confirmed_escalations, 0u);
    EXPECT_EQ(confirmed_report.escalations, report.escalations)
        << "the offline bar must not change the online trigger";
}

TEST(fleet_supervision, fused_and_threaded_executions_agree)
{
    // Supervision re-programs a channel mid-run (baseline -> escalated
    // design); the fused path emulates the window_pump's barrier/tap
    // contract, so the reframe must land on exactly the same window in
    // both execution models.
    auto cfg = supervised_config(3, 2);
    const auto fused =
        core::fleet_monitor(cfg).run(one_bad_channel(2), 24);
    cfg.execution = core::fleet_execution::threaded;
    const auto threaded =
        core::fleet_monitor(cfg).run(one_bad_channel(2), 24);
    EXPECT_TRUE(fused.same_counters(threaded));
    ASSERT_EQ(fused.channels.size(), threaded.channels.size());
    for (std::size_t c = 0; c < fused.channels.size(); ++c) {
        EXPECT_EQ(fused.channels[c], threaded.channels[c])
            << "channel " << c;
    }
    EXPECT_GT(fused.escalations, 0u)
        << "the differential run must actually cross an escalation";
}

TEST(fleet, bits_per_second_handles_a_zero_duration_run)
{
    // Smoke runs can complete in under the clock tick; the throughput
    // accessor must define that case instead of dividing by zero.
    core::fleet_report report;
    report.bits = 1u << 20;
    report.seconds = 0.0;
    EXPECT_EQ(report.bits_per_second(), 0.0);
    report.seconds = -1.0; // defensive: a clock that stepped backwards
    EXPECT_EQ(report.bits_per_second(), 0.0);
    report.seconds = 2.0;
    EXPECT_DOUBLE_EQ(report.bits_per_second(), (1u << 20) / 2.0);
}

} // namespace
