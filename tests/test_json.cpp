// Tests of the minimal JSON writer behind the BENCH_*.json telemetry:
// structure, comma/indent bookkeeping, escaping, numeric formatting and
// misuse detection.
#include "base/json.hpp"

#include <clocale>
#include <cstdint>
#include <cstdio>
#include <gtest/gtest.h>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>

namespace {

using otf::json_writer;

TEST(json, nested_structure_round_trips)
{
    json_writer w;
    w.begin_object();
    w.value("schema", "test/1");
    w.value("count", std::uint64_t{42});
    w.value("ratio", 0.5);
    w.value("ok", true);
    w.begin_array("items");
    w.begin_object();
    w.value("name", "a");
    w.end_object();
    w.value({}, "bare");
    w.end_array();
    w.begin_object("empty");
    w.end_object();
    w.end_object();
    EXPECT_EQ(w.str(), "{\n"
                       "  \"schema\": \"test/1\",\n"
                       "  \"count\": 42,\n"
                       "  \"ratio\": 0.5,\n"
                       "  \"ok\": true,\n"
                       "  \"items\": [\n"
                       "    {\n"
                       "      \"name\": \"a\"\n"
                       "    },\n"
                       "    \"bare\"\n"
                       "  ],\n"
                       "  \"empty\": {}\n"
                       "}\n");
}

TEST(json, strings_are_escaped)
{
    json_writer w;
    w.begin_object();
    w.value("k", "a\"b\\c\nd\te\x01");
    w.end_object();
    EXPECT_EQ(w.str(),
              "{\n  \"k\": \"a\\\"b\\\\c\\nd\\te\\u0001\"\n}\n");
}

TEST(json, negative_and_special_numbers)
{
    json_writer w;
    w.begin_object();
    w.value("neg", std::int64_t{-7});
    w.value("nan", 0.0 / 0.0);
    w.end_object();
    EXPECT_EQ(w.str(), "{\n  \"neg\": -7,\n  \"nan\": null\n}\n");
}

TEST(json, misuse_throws)
{
    {
        json_writer w;
        w.begin_object();
        EXPECT_THROW((void)w.str(), std::logic_error) << "unclosed object";
    }
    {
        json_writer w;
        w.begin_object();
        EXPECT_THROW(w.value({}, "x"), std::logic_error)
            << "object member without a key";
    }
    {
        json_writer w;
        w.begin_array();
        EXPECT_THROW(w.value("k", "x"), std::logic_error)
            << "array element with a key";
    }
    {
        json_writer w;
        w.begin_array();
        EXPECT_THROW(w.end_object(), std::logic_error) << "mismatched close";
    }
}

TEST(json, every_control_char_is_escaped)
{
    // 0x00..0x1F must never reach the string region raw; the named
    // escapes (\n, \t, \r) keep their short form, everything else goes
    // \u00xx.
    for (unsigned c = 0; c < 0x20; ++c) {
        json_writer w;
        w.begin_object();
        const char raw[2] = {static_cast<char>(c), '\0'};
        w.value("k", std::string_view(raw, 1));
        w.end_object();
        char escape[16];
        if (c == '\n') {
            std::snprintf(escape, sizeof escape, "\\n");
        } else if (c == '\t') {
            std::snprintf(escape, sizeof escape, "\\t");
        } else if (c == '\r') {
            std::snprintf(escape, sizeof escape, "\\r");
        } else {
            std::snprintf(escape, sizeof escape, "\\u%04x", c);
        }
        EXPECT_EQ(w.str(),
                  std::string("{\n  \"k\": \"") + escape + "\"\n}\n")
            << "control char 0x" << std::hex << c;
    }
}

TEST(json, quote_and_backslash_escape_in_keys_too)
{
    json_writer w;
    w.begin_object();
    w.value("a\"b\\c", "v");
    w.end_object();
    EXPECT_EQ(w.str(), "{\n  \"a\\\"b\\\\c\": \"v\"\n}\n");
}

TEST(json, non_ascii_bytes_pass_through)
{
    // UTF-8 multibyte sequences (and DEL) are legal JSON string bytes;
    // only C0 controls, quote and backslash need escaping.
    json_writer w;
    w.begin_object();
    w.value("k", "caf\xc3\xa9\x7f");
    w.end_object();
    EXPECT_EQ(w.str(), "{\n  \"k\": \"caf\xc3\xa9\x7f\"\n}\n");
}

TEST(json, non_finite_doubles_serialize_as_null)
{
    json_writer w;
    w.begin_object();
    w.value("pos_inf", std::numeric_limits<double>::infinity());
    w.value("neg_inf", -std::numeric_limits<double>::infinity());
    w.value("quiet_nan", std::numeric_limits<double>::quiet_NaN());
    w.value("finite", 1.5);
    w.end_object();
    EXPECT_EQ(w.str(), "{\n  \"pos_inf\": null,\n  \"neg_inf\": null,\n"
                       "  \"quiet_nan\": null,\n  \"finite\": 1.5\n}\n");
}

TEST(json, empty_containers_render_compact)
{
    {
        json_writer w;
        w.begin_array();
        w.end_array();
        EXPECT_EQ(w.str(), "[]\n") << "empty root array";
    }
    {
        json_writer w;
        w.begin_object();
        w.end_object();
        EXPECT_EQ(w.str(), "{}\n") << "empty root object";
    }
    {
        json_writer w;
        w.begin_array();
        w.begin_object();
        w.end_object();
        w.begin_array();
        w.end_array();
        w.end_array();
        EXPECT_EQ(w.str(), "[\n  {},\n  []\n]\n")
            << "empty containers nested in an array";
    }
    {
        json_writer w;
        w.begin_object();
        w.begin_object("o");
        w.end_object();
        w.begin_array("a");
        w.end_array();
        w.end_object();
        EXPECT_EQ(w.str(), "{\n  \"o\": {},\n  \"a\": []\n}\n")
            << "empty containers as object members";
    }
}

TEST(json, doubles_ignore_a_comma_decimal_locale)
{
    // Regression: formatting through the global C locale can emit "0,5"
    // under a comma-decimal locale, silently corrupting every
    // BENCH_*.json.  The writer must produce the same bytes whatever the
    // process locale is.  Minimal containers only ship C/POSIX, so skip
    // (not pass) when no comma-decimal locale is installed.
    const char* const candidates[] = {
        "de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8",
        "fr_FR.utf8",  "fr_FR",      "es_ES.UTF-8", "it_IT.UTF-8",
        "nl_NL.UTF-8", "pt_BR.UTF-8",
    };
    const std::string original = std::setlocale(LC_ALL, nullptr);
    const char* comma_locale = nullptr;
    for (const char* const candidate : candidates) {
        if (std::setlocale(LC_ALL, candidate) != nullptr
            && std::localeconv()->decimal_point[0] == ',') {
            comma_locale = candidate;
            break;
        }
    }
    if (comma_locale == nullptr) {
        std::setlocale(LC_ALL, original.c_str());
        GTEST_SKIP() << "no comma-decimal locale installed";
    }
    char smoke[32];
    std::snprintf(smoke, sizeof smoke, "%.1f", 0.5);
    EXPECT_STREQ(smoke, "0,5")
        << "printf honours " << comma_locale << " -- the hazard is real";

    json_writer w;
    w.begin_object();
    w.value("ratio", 0.5);
    w.value("tiny", 2.5e-05);
    w.end_object();
    const std::string got = w.str();
    std::setlocale(LC_ALL, original.c_str());
    EXPECT_EQ(got, "{\n  \"ratio\": 0.5,\n  \"tiny\": 2.5e-05\n}\n");
}

TEST(json, empty_string_values_and_whole_document)
{
    json_writer w;
    w.begin_object();
    w.value("empty", "");
    w.end_object();
    EXPECT_EQ(w.str(), "{\n  \"empty\": \"\"\n}\n");

    json_writer none;
    EXPECT_EQ(none.str(), "\n") << "no root at all is just a newline";
}

} // namespace
