// Tests of the minimal JSON writer behind the BENCH_*.json telemetry:
// structure, comma/indent bookkeeping, escaping, numeric formatting and
// misuse detection.
#include "base/json.hpp"

#include <cstdint>
#include <gtest/gtest.h>
#include <stdexcept>

namespace {

using otf::json_writer;

TEST(json, nested_structure_round_trips)
{
    json_writer w;
    w.begin_object();
    w.value("schema", "test/1");
    w.value("count", std::uint64_t{42});
    w.value("ratio", 0.5);
    w.value("ok", true);
    w.begin_array("items");
    w.begin_object();
    w.value("name", "a");
    w.end_object();
    w.value({}, "bare");
    w.end_array();
    w.begin_object("empty");
    w.end_object();
    w.end_object();
    EXPECT_EQ(w.str(), "{\n"
                       "  \"schema\": \"test/1\",\n"
                       "  \"count\": 42,\n"
                       "  \"ratio\": 0.5,\n"
                       "  \"ok\": true,\n"
                       "  \"items\": [\n"
                       "    {\n"
                       "      \"name\": \"a\"\n"
                       "    },\n"
                       "    \"bare\"\n"
                       "  ],\n"
                       "  \"empty\": {}\n"
                       "}\n");
}

TEST(json, strings_are_escaped)
{
    json_writer w;
    w.begin_object();
    w.value("k", "a\"b\\c\nd\te\x01");
    w.end_object();
    EXPECT_EQ(w.str(),
              "{\n  \"k\": \"a\\\"b\\\\c\\nd\\te\\u0001\"\n}\n");
}

TEST(json, negative_and_special_numbers)
{
    json_writer w;
    w.begin_object();
    w.value("neg", std::int64_t{-7});
    w.value("nan", 0.0 / 0.0);
    w.end_object();
    EXPECT_EQ(w.str(), "{\n  \"neg\": -7,\n  \"nan\": null\n}\n");
}

TEST(json, misuse_throws)
{
    {
        json_writer w;
        w.begin_object();
        EXPECT_THROW((void)w.str(), std::logic_error) << "unclosed object";
    }
    {
        json_writer w;
        w.begin_object();
        EXPECT_THROW(w.value({}, "x"), std::logic_error)
            << "object member without a key";
    }
    {
        json_writer w;
        w.begin_array();
        EXPECT_THROW(w.value("k", "x"), std::logic_error)
            << "array element with a key";
    }
    {
        json_writer w;
        w.begin_array();
        EXPECT_THROW(w.end_object(), std::logic_error) << "mismatched close";
    }
}

} // namespace
