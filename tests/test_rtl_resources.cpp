// Tests of the resource-combination algebra and the technology models
// (Spartan-6 slices / max frequency, UMC 0.13um gate equivalents).
#include "rtl/resources.hpp"

#include <gtest/gtest.h>
#include <string>

namespace {

using namespace otf::rtl;

TEST(resources, addition_sums_area_and_maximizes_paths)
{
    const resources a{.ffs = 10, .luts = 20, .carry_bits = 8,
                      .mux_levels = 1};
    const resources b{.ffs = 5, .luts = 7, .carry_bits = 21,
                      .mux_levels = 0};
    const resources c = a + b;
    EXPECT_EQ(c.ffs, 15u);
    EXPECT_EQ(c.luts, 27u);
    EXPECT_EQ(c.carry_bits, 21u) << "carry chains do not concatenate";
    EXPECT_EQ(c.mux_levels, 1u);
}

TEST(resources, to_string_mentions_all_fields)
{
    const resources r{.ffs = 1, .luts = 2, .carry_bits = 3, .mux_levels = 4};
    const std::string s = to_string(r);
    EXPECT_NE(s.find("ff=1"), std::string::npos);
    EXPECT_NE(s.find("lut=2"), std::string::npos);
    EXPECT_NE(s.find("carry=3"), std::string::npos);
    EXPECT_NE(s.find("mux=4"), std::string::npos);
}

TEST(spartan6, slices_bound_by_lut_packing)
{
    // 400 LUTs / 4 per slice * 1.3 packing = 130 slices.
    const resources r{.ffs = 100, .luts = 400, .carry_bits = 0,
                      .mux_levels = 0};
    const fpga_report rep = estimate_spartan6(r);
    EXPECT_EQ(rep.slices, 130u);
}

TEST(spartan6, slices_bound_by_ff_packing_when_ff_heavy)
{
    // 800 FF / 8 per slice * 1.3 = 130; LUT bound would be only 33.
    const resources r{.ffs = 800, .luts = 100, .carry_bits = 0,
                      .mux_levels = 0};
    const fpga_report rep = estimate_spartan6(r);
    EXPECT_EQ(rep.slices, 130u);
}

TEST(spartan6, frequency_decreases_with_longer_carry_chains)
{
    const resources narrow{.ffs = 0, .luts = 0, .carry_bits = 8,
                           .mux_levels = 0};
    const resources wide{.ffs = 0, .luts = 0, .carry_bits = 22,
                         .mux_levels = 0};
    EXPECT_GT(estimate_spartan6(narrow).max_freq_mhz,
              estimate_spartan6(wide).max_freq_mhz);
}

TEST(spartan6, frequency_decreases_with_mux_depth)
{
    const resources shallow{.ffs = 0, .luts = 0, .carry_bits = 10,
                            .mux_levels = 1};
    const resources deep{.ffs = 0, .luts = 0, .carry_bits = 10,
                         .mux_levels = 4};
    EXPECT_GT(estimate_spartan6(shallow).max_freq_mhz,
              estimate_spartan6(deep).max_freq_mhz);
}

TEST(spartan6, all_paper_scale_designs_exceed_100mhz)
{
    // The paper: "All our implementations on FPGA have a maximum working
    // frequency larger than 100 MHz."  The worst case in the model is a
    // 22-bit carry chain behind a 4-level readout mux.
    const resources worst{.ffs = 1200, .luts = 1700, .carry_bits = 22,
                          .mux_levels = 4};
    EXPECT_GT(estimate_spartan6(worst).max_freq_mhz, 100.0);
}

TEST(umc130, gate_equivalents_scale_with_ff_and_lut)
{
    const resources r{.ffs = 100, .luts = 100, .carry_bits = 0,
                      .mux_levels = 0};
    const asic_report rep = estimate_umc130(r);
    // 100 * 6 + 100 * 3 + 80 = 980.
    EXPECT_EQ(rep.gate_equivalents, 980u);
}

TEST(umc130, monotone_in_resources)
{
    const resources small{.ffs = 50, .luts = 50, .carry_bits = 0,
                          .mux_levels = 0};
    const resources large{.ffs = 500, .luts = 500, .carry_bits = 0,
                          .mux_levels = 0};
    EXPECT_LT(estimate_umc130(small).gate_equivalents,
              estimate_umc130(large).gate_equivalents);
}

} // namespace
