// Tests of the lock-free SPSC word ring: capacity rounding, wraparound,
// ragged batched push/pop, the close/drain end-of-stream protocol,
// telemetry counters, and a producer/consumer stress run that checks
// every word arrives exactly once, in order.
#include "base/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

namespace {

using otf::base::ring_buffer;

TEST(ring_buffer, capacity_rounds_up_to_power_of_two)
{
    EXPECT_EQ(ring_buffer(1).capacity(), 1u);
    EXPECT_EQ(ring_buffer(2).capacity(), 2u);
    EXPECT_EQ(ring_buffer(3).capacity(), 4u);
    EXPECT_EQ(ring_buffer(1000).capacity(), 1024u);
    EXPECT_THROW(ring_buffer{0}, std::invalid_argument);
}

TEST(ring_buffer, push_pop_round_trip)
{
    ring_buffer ring(8);
    const std::uint64_t in[3] = {11, 22, 33};
    EXPECT_EQ(ring.try_push(in, 3), 3u);
    EXPECT_EQ(ring.size(), 3u);

    std::uint64_t out[3] = {};
    EXPECT_EQ(ring.try_pop(out, 3), 3u);
    EXPECT_EQ(out[0], 11u);
    EXPECT_EQ(out[1], 22u);
    EXPECT_EQ(out[2], 33u);
    EXPECT_TRUE(ring.empty());
}

TEST(ring_buffer, partial_push_when_nearly_full)
{
    ring_buffer ring(4);
    const std::uint64_t in[6] = {1, 2, 3, 4, 5, 6};
    // Only 4 slots: the batched push accepts what fits.
    EXPECT_EQ(ring.try_push(in, 6), 4u);
    EXPECT_EQ(ring.size(), 4u);
    // Full ring rejects and counts a producer stall.
    EXPECT_EQ(ring.try_push(in, 1), 0u);
    EXPECT_EQ(ring.producer_stalls(), 1u);

    std::uint64_t out[8] = {};
    EXPECT_EQ(ring.try_pop(out, 8), 4u);
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(out[i], i + 1);
    }
    // Empty ring rejects and counts a consumer stall.
    EXPECT_EQ(ring.try_pop(out, 1), 0u);
    EXPECT_EQ(ring.consumer_stalls(), 1u);
}

TEST(ring_buffer, wraparound_preserves_order)
{
    // Capacity 4; repeatedly push 3 / pop 3 so the indices lap the
    // buffer many times and every pop straddles the wrap eventually.
    ring_buffer ring(4);
    std::uint64_t next_in = 0;
    std::uint64_t next_out = 0;
    for (unsigned round = 0; round < 100; ++round) {
        std::uint64_t in[3];
        for (auto& w : in) {
            w = next_in++;
        }
        ASSERT_EQ(ring.try_push(in, 3), 3u);
        std::uint64_t out[3] = {};
        ASSERT_EQ(ring.try_pop(out, 3), 3u);
        for (const std::uint64_t w : out) {
            ASSERT_EQ(w, next_out++);
        }
    }
    EXPECT_EQ(ring.total_pushed(), 300u);
    EXPECT_EQ(ring.total_popped(), 300u);
}

TEST(ring_buffer, ragged_batch_sizes_round_trip)
{
    // Push and pop in mismatched ragged chunk sizes; the word stream
    // must come out intact regardless of how the batches interleave.
    ring_buffer ring(16);
    const std::size_t push_sizes[] = {1, 7, 3, 16, 2, 5};
    const std::size_t pop_sizes[] = {4, 1, 9, 2, 6};
    std::uint64_t next_in = 0;
    std::uint64_t next_out = 0;
    std::size_t pi = 0;
    std::size_t ci = 0;
    while (next_out < 500) {
        {
            std::uint64_t in[16];
            const std::size_t n = push_sizes[pi++ % 6];
            for (std::size_t i = 0; i < n; ++i) {
                in[i] = next_in + i;
            }
            next_in += ring.try_push(in, n);
        }
        {
            std::uint64_t out[16] = {};
            const std::size_t n = pop_sizes[ci++ % 5];
            const std::size_t got = ring.try_pop(out, n);
            for (std::size_t i = 0; i < got; ++i) {
                ASSERT_EQ(out[i], next_out + i);
            }
            next_out += got;
        }
    }
}

TEST(ring_buffer, close_then_drain_protocol)
{
    ring_buffer ring(8);
    const std::uint64_t in[5] = {1, 2, 3, 4, 5};
    ASSERT_EQ(ring.try_push(in, 5), 5u);
    EXPECT_FALSE(ring.closed());
    EXPECT_FALSE(ring.drained());

    ring.close();
    EXPECT_TRUE(ring.closed());
    // Closed but not yet drained: the buffered words are still owed.
    EXPECT_FALSE(ring.drained());

    std::uint64_t out[8] = {};
    EXPECT_EQ(ring.try_pop(out, 8), 5u);
    EXPECT_EQ(out[4], 5u);
    EXPECT_TRUE(ring.drained());
}

TEST(ring_buffer, occupancy_high_water_mark_is_exact)
{
    // Push 2, pop 2, push 6: the ring never held more than 6 words, and
    // the high-water mark must say exactly that -- not 8, which a stale
    // producer-side head cache would report.
    ring_buffer ring(8);
    const std::uint64_t in[6] = {};
    ASSERT_EQ(ring.try_push(in, 2), 2u);
    std::uint64_t out[8];
    ASSERT_EQ(ring.try_pop(out, 2), 2u);
    ASSERT_EQ(ring.try_push(in, 6), 6u);
    EXPECT_EQ(ring.max_occupancy(), 6u);
}

TEST(ring_buffer, reserve_commit_peek_consume_round_trip)
{
    // Zero-copy span API: generate straight into the ring's storage,
    // read straight out of it, no intermediate buffers.
    ring_buffer ring(8);
    std::uint64_t* wspan = nullptr;
    ASSERT_EQ(ring.reserve(wspan, 3), 3u);
    wspan[0] = 11;
    wspan[1] = 22;
    wspan[2] = 33;
    // Reserved words are invisible until commit().
    EXPECT_TRUE(ring.empty());
    ring.commit(3);
    EXPECT_EQ(ring.size(), 3u);

    const std::uint64_t* rspan = nullptr;
    ASSERT_EQ(ring.peek(rspan, 8), 3u);
    EXPECT_EQ(rspan[0], 11u);
    EXPECT_EQ(rspan[1], 22u);
    EXPECT_EQ(rspan[2], 33u);
    // Peeked words stay buffered until consume().
    EXPECT_EQ(ring.size(), 3u);
    ring.consume(3);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.total_popped(), 3u);
}

TEST(ring_buffer, spans_clip_at_buffer_end_never_wrap)
{
    // Advance the indices so the next span would straddle the physical
    // end of the buffer: both sides must clip there and serve the rest
    // in a second round, preserving order.
    ring_buffer ring(8);
    const std::uint64_t prime[6] = {0, 1, 2, 3, 4, 5};
    ASSERT_EQ(ring.try_push(prime, 6), 6u);
    std::uint64_t sink[6];
    ASSERT_EQ(ring.try_pop(sink, 6), 6u);

    // Indices now at 6 of 8: two contiguous slots remain before the wrap.
    std::uint64_t* wspan = nullptr;
    ASSERT_EQ(ring.reserve(wspan, 5), 2u);
    wspan[0] = 100;
    wspan[1] = 101;
    ring.commit(2);
    ASSERT_EQ(ring.reserve(wspan, 3), 3u); // rest after the wrap
    wspan[0] = 102;
    wspan[1] = 103;
    wspan[2] = 104;
    ring.commit(3);

    const std::uint64_t* rspan = nullptr;
    ASSERT_EQ(ring.peek(rspan, 8), 2u); // clipped at the same boundary
    EXPECT_EQ(rspan[0], 100u);
    EXPECT_EQ(rspan[1], 101u);
    ring.consume(2);
    ASSERT_EQ(ring.peek(rspan, 8), 3u);
    EXPECT_EQ(rspan[0], 102u);
    EXPECT_EQ(rspan[1], 103u);
    EXPECT_EQ(rspan[2], 104u);
    ring.consume(3);
    EXPECT_TRUE(ring.empty());
}

TEST(ring_buffer, span_round_trips_across_every_seam_offset)
{
    // Regression sweep for the wrap seam: from every index position
    // relative to the physical end, a full-capacity fill and drain
    // through the span API must deliver every word in order -- clipping
    // at the seam, resuming contiguous from slot 0, and never handing
    // out a span that wraps.
    constexpr std::size_t cap = 8;
    for (std::size_t offset = 0; offset < cap; ++offset) {
        ring_buffer ring(cap);
        std::uint64_t scratch[cap];
        for (std::size_t i = 0; i < offset; ++i) {
            scratch[i] = i;
        }
        ASSERT_EQ(ring.try_push(scratch, offset), offset);
        ASSERT_EQ(ring.try_pop(scratch, offset), offset);

        std::uint64_t value = 0;
        std::size_t filled = 0;
        std::size_t write_rounds = 0;
        while (filled < cap) {
            std::uint64_t* wspan = nullptr;
            const std::size_t got = ring.reserve(wspan, cap - filled);
            ASSERT_GT(got, 0u) << "offset " << offset;
            ASSERT_LE(got, cap - filled) << "offset " << offset;
            // A span never crosses the seam: the first round from a
            // rotated start clips at the physical end of the buffer.
            ASSERT_LE((offset + filled) % cap + got, cap)
                << "offset " << offset << " handed out a wrapping span";
            for (std::size_t i = 0; i < got; ++i) {
                wspan[i] = value++;
            }
            ring.commit(got);
            filled += got;
            ++write_rounds;
        }
        EXPECT_LE(write_rounds, 2u) << "offset " << offset;
        EXPECT_EQ(ring.size(), cap);
        std::uint64_t* wspan = nullptr;
        EXPECT_EQ(ring.reserve(wspan, 1), 0u)
            << "a full ring must refuse a reservation";

        std::uint64_t expect = 0;
        std::size_t drained = 0;
        std::size_t read_rounds = 0;
        while (drained < cap) {
            const std::uint64_t* rspan = nullptr;
            const std::size_t got = ring.peek(rspan, cap);
            ASSERT_GT(got, 0u) << "offset " << offset;
            ASSERT_LE((offset + drained) % cap + got, cap)
                << "offset " << offset << " peeked a wrapping span";
            for (std::size_t i = 0; i < got; ++i) {
                EXPECT_EQ(rspan[i], expect++)
                    << "offset " << offset << " word " << drained + i;
            }
            ring.consume(got);
            drained += got;
            ++read_rounds;
        }
        EXPECT_LE(read_rounds, 2u) << "offset " << offset;
        EXPECT_TRUE(ring.empty());
    }
}

TEST(ring_buffer, partial_consume_at_the_seam_resumes_from_slot_zero)
{
    // A consumer that takes only part of a seam-clipped span must see
    // the remainder before the seam on the next peek, then continue
    // contiguous from slot 0 -- the exact access pattern of a window
    // pump whose window boundary lands just before the seam.
    ring_buffer ring(8);
    std::uint64_t scratch[5] = {0, 1, 2, 3, 4};
    ASSERT_EQ(ring.try_push(scratch, 5), 5u);
    ASSERT_EQ(ring.try_pop(scratch, 5), 5u);

    // Write 6 words across the seam: 3 before it, 3 after.
    std::uint64_t* wspan = nullptr;
    ASSERT_EQ(ring.reserve(wspan, 6), 3u);
    wspan[0] = 10;
    wspan[1] = 11;
    wspan[2] = 12;
    ring.commit(3);
    ASSERT_EQ(ring.reserve(wspan, 3), 3u);
    wspan[0] = 13;
    wspan[1] = 14;
    wspan[2] = 15;
    ring.commit(3);

    const std::uint64_t* rspan = nullptr;
    ASSERT_EQ(ring.peek(rspan, 8), 3u); // clipped at the seam
    EXPECT_EQ(rspan[0], 10u);
    ring.consume(2); // partial: one word left before the seam
    ASSERT_EQ(ring.peek(rspan, 8), 1u);
    EXPECT_EQ(rspan[0], 12u);
    ring.consume(1);
    ASSERT_EQ(ring.peek(rspan, 8), 3u); // contiguous from slot 0
    EXPECT_EQ(rspan[0], 13u);
    EXPECT_EQ(rspan[1], 14u);
    EXPECT_EQ(rspan[2], 15u);
    ring.consume(3);
    EXPECT_TRUE(ring.empty());
}

TEST(ring_buffer, partial_commit_and_partial_consume)
{
    // Committing fewer words than reserved (source ran dry) and
    // consuming fewer than peeked (window boundary) are both normal.
    ring_buffer ring(8);
    std::uint64_t* wspan = nullptr;
    ASSERT_EQ(ring.reserve(wspan, 8), 8u);
    wspan[0] = 7;
    wspan[1] = 8;
    ring.commit(2); // reserved 8, produced 2
    EXPECT_EQ(ring.size(), 2u);

    const std::uint64_t* rspan = nullptr;
    ASSERT_EQ(ring.peek(rspan, 8), 2u);
    EXPECT_EQ(rspan[0], 7u);
    ring.consume(1); // take one, leave one buffered
    EXPECT_EQ(ring.size(), 1u);
    ASSERT_EQ(ring.peek(rspan, 8), 1u);
    EXPECT_EQ(rspan[0], 8u);
    ring.consume(1);
    EXPECT_TRUE(ring.empty());
}

TEST(ring_buffer, zero_copy_full_and_empty_count_stalls)
{
    ring_buffer ring(4);
    std::uint64_t* wspan = nullptr;
    const std::uint64_t* rspan = nullptr;
    // Empty ring: peek rejects and counts a consumer stall.
    EXPECT_EQ(ring.peek(rspan, 4), 0u);
    EXPECT_EQ(ring.consumer_stalls(), 1u);
    ASSERT_EQ(ring.reserve(wspan, 4), 4u);
    ring.commit(4);
    // Full ring: reserve rejects and counts a producer stall.
    EXPECT_EQ(ring.reserve(wspan, 1), 0u);
    EXPECT_EQ(ring.producer_stalls(), 1u);
}

TEST(ring_buffer, zero_copy_concurrent_stress_in_order)
{
    // The span-API twin of the copying stress test: producer fills
    // reserved spans with the sequence 0,1,2,..., consumer checks peeked
    // spans, tiny ring forces constant wraparound clipping.  Under the
    // ThreadSanitizer leg this proves reserve/commit + peek/consume
    // data-race-free.
    constexpr std::uint64_t kWords = 200000;
    ring_buffer ring(8);

    std::thread producer([&ring] {
        std::uint64_t next = 0;
        unsigned batch = 1;
        while (next < kWords) {
            std::size_t want = static_cast<std::size_t>(batch % 7) + 1;
            ++batch;
            if (kWords - next < want) {
                want = static_cast<std::size_t>(kWords - next);
            }
            std::uint64_t* span = nullptr;
            const std::size_t room = ring.reserve(span, want);
            if (room == 0) {
                std::this_thread::yield();
                continue;
            }
            for (std::size_t i = 0; i < room; ++i) {
                span[i] = next + i;
            }
            ring.commit(room);
            next += room;
        }
        ring.close();
    });

    std::uint64_t expect = 0;
    unsigned batch = 3;
    bool in_order = true;
    while (!ring.drained()) {
        const std::size_t want = static_cast<std::size_t>(batch % 5) + 1;
        ++batch;
        const std::uint64_t* span = nullptr;
        const std::size_t got = ring.peek(span, want);
        if (got == 0) {
            std::this_thread::yield();
            continue;
        }
        for (std::size_t i = 0; i < got; ++i) {
            in_order = in_order && span[i] == expect + i;
        }
        ring.consume(got);
        expect += got;
    }
    producer.join();

    EXPECT_TRUE(in_order);
    EXPECT_EQ(expect, kWords);
    EXPECT_EQ(ring.total_pushed(), kWords);
    EXPECT_EQ(ring.total_popped(), kWords);
}

TEST(ring_buffer, concurrent_stress_every_word_once_in_order)
{
    // One producer, one consumer, a deliberately tiny ring (forces
    // constant wraparound and backpressure), ragged batch sizes on both
    // sides.  The consumer checks the words are the exact sequence
    // 0,1,2,...  Run under the ThreadSanitizer CI leg this also proves
    // the acquire/release protocol data-race-free.
    constexpr std::uint64_t kWords = 200000;
    ring_buffer ring(8);

    std::thread producer([&ring] {
        std::uint64_t next = 0;
        unsigned batch = 1;
        std::uint64_t buf[7];
        while (next < kWords) {
            const std::size_t n =
                static_cast<std::size_t>(batch % 7) + 1;
            ++batch;
            std::size_t want = n;
            if (kWords - next < want) {
                want = static_cast<std::size_t>(kWords - next);
            }
            for (std::size_t i = 0; i < want; ++i) {
                buf[i] = next + i;
            }
            std::size_t pushed = 0;
            while (pushed < want) {
                const std::size_t k =
                    ring.try_push(buf + pushed, want - pushed);
                if (k == 0) {
                    std::this_thread::yield();
                }
                pushed += k;
            }
            next += want;
        }
        ring.close();
    });

    std::uint64_t expect = 0;
    unsigned batch = 3;
    std::uint64_t out[5];
    bool in_order = true;
    while (!ring.drained()) {
        const std::size_t n = static_cast<std::size_t>(batch % 5) + 1;
        ++batch;
        const std::size_t got = ring.try_pop(out, n);
        if (got == 0) {
            std::this_thread::yield();
            continue;
        }
        for (std::size_t i = 0; i < got; ++i) {
            in_order = in_order && out[i] == expect + i;
        }
        expect += got;
    }
    producer.join();

    EXPECT_TRUE(in_order);
    EXPECT_EQ(expect, kWords);
    EXPECT_EQ(ring.total_pushed(), kWords);
    EXPECT_EQ(ring.total_popped(), kWords);
}

} // namespace
