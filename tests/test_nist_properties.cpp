// Property-based tests of the reference implementations: behaviour on
// ideal and defective sources, invariants of the pattern-count helpers,
// parameterized over seeds.
#include "nist/tests.hpp"
#include "trng/sources.hpp"

#include <cstdint>
#include <gtest/gtest.h>
#include <numeric>

namespace {

using namespace otf;
using namespace otf::nist;

class seeded : public ::testing::TestWithParam<std::uint64_t> {
protected:
    bit_sequence ideal(std::size_t n)
    {
        trng::ideal_source src(GetParam());
        return src.generate(n);
    }
};

TEST_P(seeded, cyclic_pattern_counts_sum_to_n)
{
    const bit_sequence seq = ideal(4096);
    for (const unsigned m : {1u, 2u, 3u, 4u, 6u}) {
        const auto counts = cyclic_pattern_counts(seq, m);
        const std::uint64_t total =
            std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
        EXPECT_EQ(total, seq.size()) << "m=" << m;
    }
}

TEST_P(seeded, cyclic_marginal_property)
{
    // Summing the 4-bit counts over the last bit yields the 3-bit counts
    // exactly (the cyclic extension makes the marginal identity exact);
    // this is the invariant behind a possible interface reduction.
    const bit_sequence seq = ideal(2048);
    const auto nu4 = cyclic_pattern_counts(seq, 4);
    const auto nu3 = cyclic_pattern_counts(seq, 3);
    for (std::uint32_t p = 0; p < 8; ++p) {
        EXPECT_EQ(nu4[2 * p] + nu4[2 * p + 1], nu3[p]) << "pattern " << p;
    }
}

TEST_P(seeded, serial_psi_statistics_nonnegative)
{
    const bit_sequence seq = ideal(8192);
    const auto r = serial_test(seq, 4);
    EXPECT_GE(r.del1, 0.0);
    EXPECT_GE(r.del2, 0.0);
    EXPECT_GE(r.p_value1, 0.0);
    EXPECT_LE(r.p_value1, 1.0);
    EXPECT_GE(r.p_value2, 0.0);
    EXPECT_LE(r.p_value2, 1.0);
}

TEST_P(seeded, cusum_consistency_with_frequency)
{
    // S_final = 2 N_ones - n ties the two tests together (trick 1).
    const bit_sequence seq = ideal(4096);
    const auto c = cumulative_sums_test(seq);
    const auto f = frequency_test(seq);
    EXPECT_EQ(c.s_final, f.s_n);
    const auto ones = static_cast<std::int64_t>(seq.count_ones());
    EXPECT_EQ((c.s_final + static_cast<std::int64_t>(seq.size())) / 2, ones);
}

TEST_P(seeded, cusum_extrema_bound_final)
{
    const bit_sequence seq = ideal(4096);
    const auto c = cumulative_sums_test(seq);
    EXPECT_GE(c.s_max, 0);
    EXPECT_LE(c.s_min, 0);
    EXPECT_GE(c.s_max, c.s_final);
    EXPECT_LE(c.s_min, c.s_final);
    EXPECT_GE(c.z_forward, 1);
    EXPECT_GE(c.z_backward, 1);
}

TEST_P(seeded, block_frequency_ones_partition_total)
{
    const bit_sequence seq = ideal(4096);
    const auto r = block_frequency_test(seq, 256);
    const std::uint64_t total =
        std::accumulate(r.ones.begin(), r.ones.end(), std::uint64_t{0});
    EXPECT_EQ(total, seq.count_ones());
}

TEST_P(seeded, longest_run_blocks_partition)
{
    const bit_sequence seq = ideal(8192);
    const auto r = longest_run_test(seq, 128);
    const std::uint64_t blocks =
        std::accumulate(r.nu.begin(), r.nu.end(), std::uint64_t{0});
    EXPECT_EQ(blocks, seq.size() / 128);
}

TEST_P(seeded, ideal_source_produces_sane_p_values)
{
    const bit_sequence seq = ideal(65536);
    EXPECT_GT(frequency_test(seq).p_value, 1e-6);
    EXPECT_GT(block_frequency_test(seq, 4096).p_value, 1e-6);
    EXPECT_GT(runs_test(seq).p_value, 1e-6);
    EXPECT_GT(longest_run_test(seq, 128).p_value, 1e-6);
    EXPECT_GT(serial_test(seq, 4).p_value1, 1e-6);
    EXPECT_GT(approximate_entropy_test(seq, 3).p_value, 1e-6);
    EXPECT_GT(cumulative_sums_test(seq).p_forward, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(seeds, seeded,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

TEST(defect_detection, stuck_source_fails_frequency_hard)
{
    const bit_sequence seq(4096, true);
    EXPECT_LT(frequency_test(seq).p_value, 1e-12);
    EXPECT_FALSE(runs_test(seq).applicable);
}

TEST(defect_detection, heavy_bias_fails_frequency)
{
    trng::biased_source src(3, 0.6);
    const bit_sequence seq = src.generate(65536);
    EXPECT_LT(frequency_test(seq).p_value, 1e-9);
}

TEST(defect_detection, correlation_fails_runs_but_not_frequency)
{
    // A sticky Markov source is balanced but has too few runs: the case
    // for running many tests at once.
    trng::markov_source src(7, 0.65);
    const bit_sequence seq = src.generate(65536);
    EXPECT_GT(frequency_test(seq).p_value, 1e-4)
        << "marginal bias stays small";
    EXPECT_LT(runs_test(seq).p_value, 1e-12);
    EXPECT_LT(serial_test(seq, 4).p_value1, 1e-9);
}

TEST(defect_detection, periodic_source_fails_serial)
{
    trng::periodic_source src(bit_sequence::from_string("0110"));
    const bit_sequence seq = src.generate(4096);
    EXPECT_LT(serial_test(seq, 4).p_value1, 1e-12);
    EXPECT_LT(approximate_entropy_test(seq, 3).p_value, 1e-12);
}

TEST(p_value_distribution, roughly_uniform_for_ideal_source)
{
    // Coarse uniformity check: over 200 ideal windows the frequency-test
    // P-value should fall below 0.1 roughly 10% +- 8% of the time.
    unsigned below = 0;
    const unsigned trials = 200;
    for (unsigned s = 0; s < trials; ++s) {
        trng::ideal_source src(1000 + s);
        const bit_sequence seq = src.generate(4096);
        if (frequency_test(seq).p_value < 0.1) {
            ++below;
        }
    }
    EXPECT_GT(below, 4u);
    EXPECT_LT(below, 40u);
}

} // namespace
