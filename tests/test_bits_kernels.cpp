// Property tests for the span-kernel primitives in base/bits.hpp: every
// kernel variant (reference, portable, simd) must agree with a naive
// per-bit model on ragged lengths, word seams and extreme inputs, and the
// 64x64 transpose must be an involution with the documented orientation.
//
// tests/test_kernel_oracle.cpp pins the *users* of these primitives (the
// engines' consume_span kernels, the sliced block) against the per-bit
// oracle; this file pins the primitives themselves, so a kernel bug fails
// here first with a small reproducer instead of deep inside a design run.
#include "base/bits.hpp"
#include "trng/xoshiro.hpp"

#include "support/fixed_seed.hpp"

#include <cstdint>
#include <gtest/gtest.h>
#include <string>
#include <vector>

namespace {

using namespace otf;
using test::fixture_seed;

constexpr bits::kernel_variant kAllVariants[] = {
    bits::kernel_variant::reference,
    bits::kernel_variant::portable,
    bits::kernel_variant::simd,
};

const char* variant_name(bits::kernel_variant v)
{
    switch (v) {
    case bits::kernel_variant::reference: return "reference";
    case bits::kernel_variant::portable: return "portable";
    case bits::kernel_variant::simd: return "simd";
    }
    return "?";
}

struct variant_guard {
    ~variant_guard() { bits::set_kernel_variant(bits::kernel_variant::simd); }
};

std::vector<std::uint64_t> random_words(std::uint64_t seed, std::size_t n)
{
    trng::xoshiro256ss rng(seed);
    std::vector<std::uint64_t> words(n);
    for (std::uint64_t& w : words) {
        w = rng.next();
    }
    return words;
}

// Naive per-bit models -- deliberately the dumbest possible code.

std::uint64_t naive_popcount(const std::vector<std::uint64_t>& words,
                             std::size_t nbits)
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < nbits; ++i) {
        total += (words[i / 64] >> (i % 64)) & 1u;
    }
    return total;
}

std::uint64_t naive_transitions(const std::vector<std::uint64_t>& words,
                                std::size_t nwords)
{
    std::uint64_t total = 0;
    for (std::size_t i = 1; i < nwords * 64; ++i) {
        const unsigned a =
            static_cast<unsigned>((words[i / 64] >> (i % 64)) & 1u);
        const unsigned b = static_cast<unsigned>(
            (words[(i - 1) / 64] >> ((i - 1) % 64)) & 1u);
        total += a ^ b;
    }
    return total;
}

bits::walk_summary naive_walk(const std::vector<std::uint64_t>& words,
                              std::size_t nwords)
{
    bits::walk_summary acc{0, -65, 65};
    for (std::size_t i = 0; i < nwords * 64; ++i) {
        acc.delta += ((words[i / 64] >> (i % 64)) & 1u) != 0 ? 1 : -1;
        acc.max_prefix =
            acc.delta > acc.max_prefix ? acc.delta : acc.max_prefix;
        acc.min_prefix =
            acc.delta < acc.min_prefix ? acc.delta : acc.min_prefix;
    }
    return acc;
}

// ---------------------------------------------------------------------------
// low_mask / prefix_popcount.
// ---------------------------------------------------------------------------

TEST(bits_kernels, low_mask_edges)
{
    EXPECT_EQ(bits::low_mask(0), 0u);
    EXPECT_EQ(bits::low_mask(1), 1u);
    EXPECT_EQ(bits::low_mask(63), ~std::uint64_t{0} >> 1);
    EXPECT_EQ(bits::low_mask(64), ~std::uint64_t{0});
}

TEST(bits_kernels, prefix_popcount_matches_naive_for_every_k)
{
    variant_guard guard;
    const auto words = random_words(fixture_seed(0), 8);
    for (const bits::kernel_variant v : kAllVariants) {
        bits::set_kernel_variant(v);
        for (const std::uint64_t w : words) {
            for (unsigned k = 0; k <= 64; ++k) {
                unsigned naive = 0;
                for (unsigned i = 0; i < k; ++i) {
                    naive += static_cast<unsigned>((w >> i) & 1u);
                }
                EXPECT_EQ(bits::prefix_popcount(w, k), naive)
                    << variant_name(v) << " k=" << k;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// span_popcount: every ragged length from empty through several words
// (covers the SIMD block, the 4-word SWAR block, the word loop and the
// masked tail in one sweep).
// ---------------------------------------------------------------------------

TEST(bits_kernels, span_popcount_matches_naive_on_ragged_lengths)
{
    variant_guard guard;
    const auto words = random_words(fixture_seed(1), 12);
    for (const bits::kernel_variant v : kAllVariants) {
        bits::set_kernel_variant(v);
        for (std::size_t nbits = 0; nbits <= 64 * 11 + 1; ++nbits) {
            ASSERT_EQ(bits::span_popcount(words.data(), nbits),
                      naive_popcount(words, nbits))
                << variant_name(v) << " nbits=" << nbits;
        }
    }
}

TEST(bits_kernels, span_popcount_masks_garbage_past_the_tail)
{
    variant_guard guard;
    // All-ones words: any unmasked tail bit inflates the count.
    const std::vector<std::uint64_t> ones(5, ~std::uint64_t{0});
    for (const bits::kernel_variant v : kAllVariants) {
        bits::set_kernel_variant(v);
        for (const std::size_t nbits : {1u, 63u, 65u, 100u, 257u}) {
            EXPECT_EQ(bits::span_popcount(ones.data(), nbits), nbits)
                << variant_name(v);
        }
    }
}

// ---------------------------------------------------------------------------
// span_transitions: word seams carry the previous MSB across.
// ---------------------------------------------------------------------------

TEST(bits_kernels, span_transitions_matches_naive)
{
    variant_guard guard;
    const auto words = random_words(fixture_seed(2), 9);
    for (const bits::kernel_variant v : kAllVariants) {
        bits::set_kernel_variant(v);
        for (std::size_t nwords = 0; nwords <= words.size(); ++nwords) {
            EXPECT_EQ(bits::span_transitions(words.data(), nwords),
                      naive_transitions(words, nwords))
                << variant_name(v) << " nwords=" << nwords;
        }
    }
}

TEST(bits_kernels, span_transitions_counts_seam_transitions)
{
    variant_guard guard;
    // Word 0 ends in 1 (MSB set), word 1 starts with 0: exactly one
    // transition at the seam plus one at word 0's own 0->1 step.
    const std::vector<std::uint64_t> words = {std::uint64_t{1} << 63, 0};
    for (const bits::kernel_variant v : kAllVariants) {
        bits::set_kernel_variant(v);
        EXPECT_EQ(bits::span_transitions(words.data(), 2), 2u)
            << variant_name(v);
    }
}

// ---------------------------------------------------------------------------
// word_walk / span_walk: the SWAR and SIMD walks against the per-bit
// trajectory, including extreme words that saturate the byte lanes.
// ---------------------------------------------------------------------------

TEST(bits_kernels, word_walk_matches_naive_on_random_and_extreme_words)
{
    variant_guard guard;
    auto words = random_words(fixture_seed(3), 32);
    words.push_back(0);                    // min everywhere, delta -64
    words.push_back(~std::uint64_t{0});    // max everywhere, delta +64
    words.push_back(0xaaaaaaaaaaaaaaaaull); // alternating from 0
    words.push_back(0x5555555555555555ull); // alternating from 1
    words.push_back(bits::low_mask(32));    // +32 then back down
    for (const bits::kernel_variant v : kAllVariants) {
        bits::set_kernel_variant(v);
        for (const std::uint64_t w : words) {
            const std::vector<std::uint64_t> one = {w};
            const bits::walk_summary naive = naive_walk(one, 1);
            const bits::walk_summary got = bits::word_walk(w);
            EXPECT_EQ(got.delta, naive.delta) << variant_name(v);
            EXPECT_EQ(got.max_prefix, naive.max_prefix) << variant_name(v);
            EXPECT_EQ(got.min_prefix, naive.min_prefix) << variant_name(v);
        }
    }
}

TEST(bits_kernels, span_walk_matches_naive_on_every_span_length)
{
    variant_guard guard;
    const auto words = random_words(fixture_seed(4), 11);
    for (const bits::kernel_variant v : kAllVariants) {
        bits::set_kernel_variant(v);
        for (std::size_t nwords = 0; nwords <= words.size(); ++nwords) {
            const bits::walk_summary naive = naive_walk(words, nwords);
            const bits::walk_summary got =
                bits::span_walk(words.data(), nwords);
            EXPECT_EQ(got.delta, naive.delta)
                << variant_name(v) << " nwords=" << nwords;
            EXPECT_EQ(got.max_prefix, naive.max_prefix)
                << variant_name(v) << " nwords=" << nwords;
            EXPECT_EQ(got.min_prefix, naive.min_prefix)
                << variant_name(v) << " nwords=" << nwords;
        }
    }
}

TEST(bits_kernels, span_walk_tracks_extremes_across_word_boundaries)
{
    variant_guard guard;
    // Up 64, down 64, up 64: the max lives at the end of words 0 and 2,
    // the min at the end of word 1 -- the fold must carry offsets right.
    const std::vector<std::uint64_t> words = {
        ~std::uint64_t{0}, 0, ~std::uint64_t{0}};
    for (const bits::kernel_variant v : kAllVariants) {
        bits::set_kernel_variant(v);
        const bits::walk_summary s = bits::span_walk(words.data(), 3);
        EXPECT_EQ(s.delta, 64) << variant_name(v);
        EXPECT_EQ(s.max_prefix, 64) << variant_name(v);
        EXPECT_EQ(s.min_prefix, 0) << variant_name(v);
    }
}

// ---------------------------------------------------------------------------
// transpose_64x64: involution + orientation.
// ---------------------------------------------------------------------------

TEST(bits_kernels, transpose_is_an_involution)
{
    const auto original = random_words(fixture_seed(5), 64);
    std::uint64_t m[64];
    for (unsigned i = 0; i < 64; ++i) {
        m[i] = original[i];
    }
    bits::transpose_64x64(m);
    bits::transpose_64x64(m);
    for (unsigned i = 0; i < 64; ++i) {
        EXPECT_EQ(m[i], original[i]) << "row " << i;
    }
}

TEST(bits_kernels, transpose_orientation_swaps_row_and_column)
{
    const auto original = random_words(fixture_seed(6), 64);
    std::uint64_t m[64];
    for (unsigned i = 0; i < 64; ++i) {
        m[i] = original[i];
    }
    bits::transpose_64x64(m);
    for (unsigned i = 0; i < 64; ++i) {
        for (unsigned j = 0; j < 64; ++j) {
            ASSERT_EQ((m[i] >> j) & 1u, (original[j] >> i) & 1u)
                << "bit (" << i << ", " << j << ")";
        }
    }
}

TEST(bits_kernels, transpose_of_identity_is_identity)
{
    std::uint64_t m[64];
    for (unsigned i = 0; i < 64; ++i) {
        m[i] = std::uint64_t{1} << i;
    }
    bits::transpose_64x64(m);
    for (unsigned i = 0; i < 64; ++i) {
        EXPECT_EQ(m[i], std::uint64_t{1} << i) << "row " << i;
    }
}

// ---------------------------------------------------------------------------
// Dispatch plumbing.
// ---------------------------------------------------------------------------

TEST(bits_kernels, kernel_variant_round_trips)
{
    variant_guard guard;
    for (const bits::kernel_variant v : kAllVariants) {
        bits::set_kernel_variant(v);
        EXPECT_EQ(bits::active_kernel_variant(), v);
    }
}

} // namespace
