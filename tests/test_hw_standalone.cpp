// Tests of the standalone full-hardware baseline engines ([13]-style):
// functional decisions against the reference implementations, and the
// structural properties Table IV rests on (duplicated counters, expensive
// arithmetic, single alarm wire).
#include "core/critical_values.hpp"
#include "core/design_config.hpp"
#include "hw/standalone.hpp"
#include "hw/testing_block.hpp"
#include "nist/distributions.hpp"
#include "nist/special_functions.hpp"
#include "nist/tests.hpp"
#include "trng/sources.hpp"

#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>
#include <vector>

namespace {

using namespace otf;

constexpr unsigned log2_n = 12;
constexpr std::uint64_t n = 1u << log2_n;
constexpr double alpha = 0.01;

bit_sequence ideal_bits(std::uint64_t seed)
{
    trng::ideal_source src(seed);
    return src.generate(n);
}

TEST(standalone_frequency, agrees_with_reference_decision)
{
    const std::int64_t bound = static_cast<std::int64_t>(std::floor(
        std::sqrt(2.0 * n) * nist::erfc_inv(alpha)));
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        hw::standalone_frequency eng(log2_n,
                                     static_cast<std::uint64_t>(bound));
        const bit_sequence seq = ideal_bits(seed);
        for (std::size_t i = 0; i < seq.size(); ++i) {
            eng.consume(seq[i]);
        }
        const bool alarm = eng.finalize();
        const auto ref = nist::frequency_test(seq);
        EXPECT_EQ(alarm, ref.p_value < alpha) << "seed " << seed;
    }
}

TEST(standalone_frequency, alarms_on_stuck_source)
{
    hw::standalone_frequency eng(log2_n, 100);
    for (unsigned i = 0; i < n; ++i) {
        eng.consume(true);
    }
    EXPECT_TRUE(eng.finalize());
    EXPECT_TRUE(eng.alarm());
}

TEST(standalone_block_frequency, matches_reference_statistic)
{
    const unsigned log2_m = 9;
    const std::uint64_t blocks = n >> log2_m;
    const double crit = nist::chi_squared_critical(
        static_cast<double>(blocks), alpha);
    const auto bound = static_cast<std::uint64_t>(
        std::floor((1u << log2_m) * crit));
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        hw::standalone_block_frequency eng(log2_n, log2_m, bound);
        const bit_sequence seq = ideal_bits(seed);
        for (std::size_t i = 0; i < seq.size(); ++i) {
            eng.consume(seq[i]);
        }
        const bool alarm = eng.finalize();
        const auto ref = nist::block_frequency_test(seq, 1u << log2_m);
        EXPECT_EQ(alarm, ref.p_value < alpha) << "seed " << seed;
        // The accumulated integer statistic is M * chi^2 exactly.
        EXPECT_NEAR(static_cast<double>(eng.accumulated()),
                    (1u << log2_m) * ref.chi_squared, 1e-6);
    }
}

TEST(standalone_runs, uses_critical_value_intervals)
{
    const auto cfg = core::custom_design(
        log2_n, hw::test_set{}
                    .with(hw::test_id::frequency)
                    .with(hw::test_id::runs)
                    .with(hw::test_id::cumulative_sums));
    const auto cv = core::compute_critical_values(cfg, alpha);
    std::vector<hw::standalone_runs::interval> intervals;
    for (const auto& iv : cv.t3_intervals) {
        intervals.push_back({static_cast<std::uint64_t>(iv.ones_lo),
                             static_cast<std::uint64_t>(iv.ones_hi),
                             static_cast<std::uint64_t>(iv.runs_lo),
                             static_cast<std::uint64_t>(iv.runs_hi)});
    }
    unsigned agreements = 0;
    unsigned trials = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        hw::standalone_runs eng(log2_n, intervals);
        const bit_sequence seq = ideal_bits(seed);
        for (std::size_t i = 0; i < seq.size(); ++i) {
            eng.consume(seq[i]);
        }
        const bool alarm = eng.finalize();
        const auto ref = nist::runs_test(seq);
        const bool ref_fail = !ref.applicable || ref.p_value < alpha;
        ++trials;
        agreements += (alarm == ref_fail) ? 1 : 0;
    }
    // Interval quantization can flip borderline sequences; gross agreement
    // must still be near-total on ideal inputs.
    EXPECT_GE(agreements, trials - 1);
}

TEST(standalone_cusum, detects_walks_beyond_bound)
{
    const auto cfg = core::custom_design(
        log2_n, hw::test_set{}
                    .with(hw::test_id::frequency)
                    .with(hw::test_id::cumulative_sums));
    const auto cv = core::compute_critical_values(cfg, alpha);
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        hw::standalone_cusum eng(
            log2_n, static_cast<std::uint64_t>(cv.t13_z_bound));
        const bit_sequence seq = ideal_bits(seed);
        for (std::size_t i = 0; i < seq.size(); ++i) {
            eng.consume(seq[i]);
        }
        const bool alarm = eng.finalize();
        const auto ref = nist::cumulative_sums_test(seq);
        EXPECT_EQ(alarm, ref.p_forward < alpha) << "seed " << seed;
    }
}

TEST(standalone_non_overlapping, accumulates_scaled_chi_squared)
{
    const unsigned log2_m = 9;
    const unsigned blocks = 1u << (log2_n - log2_m);
    const auto mv =
        nist::non_overlapping_template_moments(9, 1u << log2_m);
    const double crit =
        nist::chi_squared_critical(static_cast<double>(blocks), alpha);
    const auto bound = static_cast<std::uint64_t>(
        std::floor(std::ldexp(mv.variance * crit, 18)));
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        hw::standalone_non_overlapping eng(log2_n, log2_m, 0b000000001u, 9,
                                           bound);
        const bit_sequence seq = ideal_bits(seed);
        for (std::size_t i = 0; i < seq.size(); ++i) {
            eng.consume(seq[i]);
        }
        const bool alarm = eng.finalize();
        const auto ref = nist::non_overlapping_template_test(
            seq, 0b000000001u, 9, blocks);
        EXPECT_EQ(alarm, ref.p_value < alpha) << "seed " << seed;
    }
}

TEST(standalone_longest_run, classifies_and_decides)
{
    const unsigned log2_m = 7;
    const auto pi = nist::longest_run_category_probs(1u << log2_m, 4, 9);
    const unsigned blocks = 1u << (log2_n - log2_m);
    std::vector<std::uint64_t> weights;
    for (const double p : pi) {
        weights.push_back(static_cast<std::uint64_t>(
            std::llround(std::ldexp(1.0 / p, 12))));
    }
    const double crit = nist::chi_squared_critical(
        static_cast<double>(pi.size()) - 1.0, alpha);
    const auto hi = static_cast<std::uint64_t>(std::llround(
        std::ldexp(blocks * (crit + blocks), 12)));
    hw::standalone_longest_run eng(log2_n, log2_m, 4, 9, weights, 0, hi);
    const bit_sequence seq = ideal_bits(5);
    for (std::size_t i = 0; i < seq.size(); ++i) {
        eng.consume(seq[i]);
    }
    const bool alarm = eng.finalize();
    const auto ref = nist::longest_run_test(seq, 1u << log2_m, 4, 9);
    for (unsigned c = 0; c < pi.size(); ++c) {
        EXPECT_EQ(eng.category(c), ref.nu[c]);
    }
    EXPECT_EQ(alarm, ref.p_value < alpha);
}

TEST(baseline_structure, standalone_tests_duplicate_counters)
{
    // Two standalone engines both carry a private bit counter and a ones
    // counter; the unified design amortizes both.  This is the root of the
    // Table IV area gap.
    hw::standalone_frequency t1(16, 100);
    hw::standalone_runs t3(
        16, {{0, 1u << 16, 0, 1u << 16}});
    const auto unified_cfg = core::paper_design(16, core::tier::light);
    const hw::testing_block unified(unified_cfg);

    const auto sum_ffs = t1.cost().ffs + t3.cost().ffs;
    // The unified block runs five tests in fewer FFs than two standalone
    // tests once the bit counter, walk and interface are shared.
    EXPECT_GT(sum_ffs, 16u * 2u)
        << "each standalone engine pays its own 16-bit position counter";
    EXPECT_LT(t1.cost().ffs, unified.cost().ffs);
}

TEST(baseline_structure, hardware_decision_needs_multiplier_area)
{
    // The standalone block-frequency engine carries a squarer; the unified
    // engine of the same test does not (squaring moved to software).
    hw::standalone_block_frequency standalone(16, 12, 1u << 20);
    hw::block_frequency_hw unified(16, 12);
    EXPECT_GT(standalone.cost().luts, 3 * unified.cost().luts);
}

TEST(baseline_structure, decision_latency_sums_to_tens_of_cycles)
{
    // The [13]-style bank of six tests finishes a few cycles after the
    // last bit (their reported latency: 21 cycles).
    hw::standalone_frequency t1(16, 100);
    hw::standalone_block_frequency t2(16, 12, 1u << 20);
    hw::standalone_runs t3(16, {{0, 1u << 16, 0, 1u << 16}});
    hw::standalone_longest_run t4(16, 7, 4, 9,
                                  {4096, 4096, 4096, 4096, 4096, 4096}, 0,
                                  1u << 30);
    hw::standalone_non_overlapping t7(16, 13, 0b000000001u, 9, 1u << 30);
    hw::standalone_cusum t13(16, 700);
    const unsigned total = t1.decision_latency() + t2.decision_latency()
        + t3.decision_latency() + t4.decision_latency()
        + t7.decision_latency() + t13.decision_latency();
    EXPECT_GE(total, 10u);
    EXPECT_LE(total, 40u);
}

} // namespace
