// Tests of the per-device variation sampler and the device_source wrapper:
// pure-function determinism of sampling, distribution bounds, lane
// bit-exactness across all device kinds, dormancy before the attack onset,
// mid-run churn of healthy devices, and parameter validation.
#include "trng/device_profile.hpp"

#include "support/fixed_seed.hpp"

#include <cstdint>
#include <gtest/gtest.h>
#include <set>
#include <stdexcept>
#include <vector>

namespace {

using namespace otf;
using namespace otf::trng;
using test::fixture_seed;

bool same_profile(const device_profile& a, const device_profile& b)
{
    return a.device == b.device && a.kind == b.kind && a.seed == b.seed
        && a.p_one == b.p_one && a.peak_severity == b.peak_severity
        && a.onset_window == b.onset_window && a.churns == b.churns
        && a.churn_window == b.churn_window
        && a.churn_p_one == b.churn_p_one && a.rtn_duty == b.rtn_duty
        && a.collapse_fraction == b.collapse_fraction
        && a.substitution_period_bits == b.substitution_period_bits;
}

/// A fixed attacked profile for the device_source tests; kind varies.
device_profile attacked_profile(device_kind kind)
{
    device_profile p;
    p.device = 42;
    p.kind = kind;
    p.seed = fixture_seed(7);
    p.p_one = 0.49;
    p.peak_severity = 0.8;
    p.onset_window = 2;
    p.rtn_duty = 0.6;
    p.collapse_fraction = 0.9;
    p.substitution_period_bits = 256;
    return p;
}

const device_kind kAttackedKinds[] = {
    device_kind::rtn,          device_kind::bias_drift,
    device_kind::lock_in,      device_kind::fault,
    device_kind::entropy_collapse, device_kind::substitution,
};

TEST(device_profile, sampling_is_a_pure_function)
{
    const population_profile pp;
    for (std::uint32_t d = 0; d < 32; ++d) {
        const device_profile a = sample_device(pp, fixture_seed(1), d);
        const device_profile b = sample_device(pp, fixture_seed(1), d);
        EXPECT_TRUE(same_profile(a, b)) << "device " << d;
        EXPECT_EQ(a.device, d);
    }
    // A different master seed is a different population.
    const device_profile a = sample_device(pp, fixture_seed(1), 5);
    const device_profile b = sample_device(pp, fixture_seed(2), 5);
    EXPECT_NE(a.seed, b.seed);
}

TEST(device_profile, sampled_parameters_respect_the_distributions)
{
    population_profile pp;
    pp.attacked_fraction = 0.25;
    constexpr std::uint32_t kDevices = 2000;
    std::uint32_t attacked = 0;
    std::uint32_t churned = 0;
    std::set<std::uint64_t> seeds;
    for (std::uint32_t d = 0; d < kDevices; ++d) {
        const device_profile p = sample_device(pp, fixture_seed(3), d);
        seeds.insert(p.seed);
        EXPECT_GE(p.p_one, 0.5 - pp.healthy_bias_half_range);
        EXPECT_LE(p.p_one, 0.5 + pp.healthy_bias_half_range);
        EXPECT_GE(p.peak_severity, pp.min_peak_severity);
        EXPECT_LE(p.peak_severity, pp.max_peak_severity);
        EXPECT_GE(p.onset_window, pp.onset_min_window);
        EXPECT_LE(p.onset_window, pp.onset_max_window);
        EXPECT_GE(p.rtn_duty, pp.rtn_min_duty);
        EXPECT_LE(p.rtn_duty, pp.rtn_max_duty);
        EXPECT_GE(p.collapse_fraction, pp.collapse_min_fraction);
        EXPECT_LE(p.collapse_fraction, pp.collapse_max_fraction);
        EXPECT_TRUE(p.substitution_period_bits == 128
                    || p.substitution_period_bits == 256
                    || p.substitution_period_bits == 512);
        if (p.attacked()) {
            ++attacked;
            EXPECT_FALSE(p.churns) << "churn models fleet turnover of "
                                      "healthy units only";
        } else {
            EXPECT_EQ(p.kind, device_kind::healthy);
            if (p.churns) {
                ++churned;
                EXPECT_GE(p.churn_window, pp.churn_min_window);
                EXPECT_LE(p.churn_window, pp.churn_max_window);
            }
        }
    }
    // Loose binomial bounds: ~5 sigma around the expected counts.
    EXPECT_GT(attacked, kDevices / 4 - 100u);
    EXPECT_LT(attacked, kDevices / 4 + 100u);
    EXPECT_GT(churned, 0u);
    EXPECT_EQ(seeds.size(), kDevices) << "per-device seeds must differ";
}

TEST(device_profile, zero_weight_kinds_are_never_drawn)
{
    population_profile pp;
    pp.attacked_fraction = 1.0;
    pp.model_weights = {0.0, 1.0, 0.0, 1.0, 0.0, 0.0};
    for (std::uint32_t d = 0; d < 200; ++d) {
        const device_profile p = sample_device(pp, fixture_seed(4), d);
        EXPECT_TRUE(p.kind == device_kind::bias_drift
                    || p.kind == device_kind::fault)
            << to_string(p.kind);
    }
}

TEST(device_profile, device_source_lanes_are_bit_exact)
{
    // The fleet runs devices through the word lane; the per-bit lane is
    // the oracle.  Both must agree for every kind, across the onset (and
    // churn) transitions.
    for (const device_kind kind : kAttackedKinds) {
        const device_profile p = attacked_profile(kind);
        device_source via_bits(p, 128);
        device_source via_words(p, 128);
        const bit_sequence seq = via_bits.generate(128 * 6);
        const std::vector<std::uint64_t> words =
            via_words.generate_words(128 * 6 / 64);
        EXPECT_EQ(seq, bit_sequence::from_words(words, 128 * 6))
            << to_string(kind);
    }
    device_profile churner;
    churner.seed = fixture_seed(8);
    churner.churns = true;
    churner.churn_window = 2;
    device_source via_bits(churner, 128);
    device_source via_words(churner, 128);
    const bit_sequence seq = via_bits.generate(128 * 6);
    const std::vector<std::uint64_t> words =
        via_words.generate_words(128 * 6 / 64);
    EXPECT_EQ(seq, bit_sequence::from_words(words, 128 * 6)) << "churn";
}

TEST(device_profile, ragged_interleaving_is_bit_exact)
{
    const std::size_t chunks[] = {1, 7, 64, 3, 128, 61, 192, 5};
    for (const device_kind kind : kAttackedKinds) {
        device_source oracle(attacked_profile(kind), 128);
        device_source ragged(attacked_profile(kind), 128);
        bit_sequence want;
        bit_sequence got;
        std::vector<std::uint64_t> words; // reused across chunks
        for (const std::size_t bits : chunks) {
            for (std::size_t i = 0; i < bits; ++i) {
                want.push_back(oracle.next_bit());
            }
            if (bits % 64 == 0) {
                ragged.generate_words(words, bits / 64);
                const auto part = bit_sequence::from_words(words, bits);
                for (std::size_t i = 0; i < part.size(); ++i) {
                    got.push_back(part[i]);
                }
            } else {
                for (std::size_t i = 0; i < bits; ++i) {
                    got.push_back(ragged.next_bit());
                }
            }
        }
        EXPECT_EQ(want, got) << to_string(kind);
    }
}

TEST(device_profile, attack_is_dormant_before_its_onset_window)
{
    // Before the onset window the model sits at severity 0, which is a
    // transparent pass-through: the stream must equal that of the same
    // device with its onset pushed past the horizon.  After onset they
    // must diverge (the attack is real).
    for (const device_kind kind : kAttackedKinds) {
        device_profile p = attacked_profile(kind);
        p.onset_window = 3;
        device_profile never = p;
        never.onset_window = 1000000;
        device_source attacked_src(p, 128);
        device_source dormant_src(never, 128);
        const std::size_t pre_bits = 3 * 128;
        EXPECT_EQ(attacked_src.generate(pre_bits),
                  dormant_src.generate(pre_bits))
            << to_string(kind) << ": pre-onset prefix must be healthy";
        // Generous post-onset horizon: bias-drift's walk only steps
        // every 2048 bits, so a short suffix could legitimately match.
        EXPECT_NE(attacked_src.generate(128 * 80),
                  dormant_src.generate(128 * 80))
            << to_string(kind) << ": post-onset streams must diverge";
    }
}

TEST(device_profile, churn_swaps_the_unit_at_its_window)
{
    device_profile p;
    p.seed = fixture_seed(9);
    p.p_one = 0.5;
    p.churns = true;
    p.churn_window = 2;
    p.churn_p_one = 0.5;
    device_profile stays = p;
    stays.churns = false;
    device_source churning(p, 128);
    device_source staying(stays, 128);
    EXPECT_EQ(churning.generate(2 * 128), staying.generate(2 * 128))
        << "pre-churn prefix is the original unit";
    EXPECT_NE(churning.generate(4 * 128), staying.generate(4 * 128))
        << "the replacement unit has its own seed";
}

TEST(device_profile, onset_window_zero_attacks_from_the_first_bit)
{
    device_profile p = attacked_profile(device_kind::substitution);
    p.onset_window = 0;
    p.peak_severity = 1.0;
    device_source src(p, 128);
    // A severity-1 substitution replays a fixed 256-bit block: the
    // stream must be periodic from the start.
    const bit_sequence bits = src.generate(1024);
    for (std::size_t i = 0; i + 256 < bits.size(); ++i) {
        ASSERT_EQ(bits[i], bits[i + 256]) << "bit " << i;
    }
}

TEST(device_profile, validation_rejects_bad_parameters)
{
    {
        population_profile pp;
        pp.attacked_fraction = 1.5;
        EXPECT_THROW(pp.validate(), std::invalid_argument);
    }
    {
        population_profile pp;
        pp.model_weights = {0, 0, 0, 0, 0, 0};
        EXPECT_THROW(pp.validate(), std::invalid_argument);
    }
    {
        population_profile pp;
        pp.model_weights[2] = -1.0;
        EXPECT_THROW(pp.validate(), std::invalid_argument);
    }
    {
        population_profile pp;
        pp.min_peak_severity = 0.9;
        pp.max_peak_severity = 0.5;
        EXPECT_THROW(pp.validate(), std::invalid_argument);
    }
    {
        population_profile pp;
        pp.onset_min_window = 9;
        pp.onset_max_window = 3;
        EXPECT_THROW(pp.validate(), std::invalid_argument);
    }
    {
        population_profile pp;
        pp.rtn_min_duty = 0.0;
        EXPECT_THROW(pp.validate(), std::invalid_argument);
    }
    {
        population_profile pp;
        pp.healthy_bias_half_range = 0.5;
        EXPECT_THROW(pp.validate(), std::invalid_argument);
    }
    EXPECT_THROW(device_source(device_profile{}, 0),
                 std::invalid_argument);
    EXPECT_THROW(device_source(device_profile{}, 100),
                 std::invalid_argument);
}

} // namespace
