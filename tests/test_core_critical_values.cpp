// Tests of the precomputed critical values: each integer bound must encode
// the same accept/reject boundary as the reference statistic it inverts,
// and the whole table must respond to alpha the way the paper's
// flexibility argument requires.
#include "core/critical_values.hpp"
#include "core/design_config.hpp"
#include "nist/distributions.hpp"
#include "nist/special_functions.hpp"
#include "nist/tests.hpp"

#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>

namespace {

using namespace otf;
using core::compute_critical_values;
using core::critical_values;

const hw::block_config cfg_high = core::paper_design(16, core::tier::high);

TEST(critical_values, frequency_bound_inverts_erfc)
{
    const auto cv = compute_critical_values(cfg_high, 0.01);
    const double n = 65536.0;
    // P(|S| = bound) must be >= alpha and P(|S| = bound + 1) < alpha...
    // S has the parity of n (even), so step by 2.
    const double p_at = nist::erfc(
        static_cast<double>(cv.t1_max_deviation) / std::sqrt(2.0 * n));
    const double p_beyond = nist::erfc(
        static_cast<double>(cv.t1_max_deviation + 2) / std::sqrt(2.0 * n));
    EXPECT_GE(p_at, 0.01);
    EXPECT_LT(p_beyond, 0.01);
}

TEST(critical_values, block_frequency_bound_inverts_chi_squared)
{
    const auto cv = compute_critical_values(cfg_high, 0.01);
    const double m = 4096.0;
    const double chi_at = static_cast<double>(cv.t2_sum_bound) / m;
    const double chi_beyond =
        static_cast<double>(cv.t2_sum_bound + 1) / m;
    EXPECT_GE(nist::igamc(8.0, chi_at / 2.0), 0.01);
    EXPECT_LT(nist::igamc(8.0, chi_beyond / 2.0), 0.0101);
}

TEST(critical_values, runs_intervals_tile_admissible_range)
{
    const auto cv = compute_critical_values(cfg_high, 0.01);
    ASSERT_FALSE(cv.t3_intervals.empty());
    // Contiguous cover of the tau-admissible N_ones range.
    for (std::size_t i = 1; i < cv.t3_intervals.size(); ++i) {
        EXPECT_EQ(cv.t3_intervals[i].ones_lo,
                  cv.t3_intervals[i - 1].ones_hi + 1);
    }
    const double tau_ones = 2.0 * std::sqrt(65536.0);
    EXPECT_NEAR(static_cast<double>(cv.t3_intervals.front().ones_lo),
                65536.0 / 2.0 - tau_ones, 2.0);
    EXPECT_NEAR(static_cast<double>(cv.t3_intervals.back().ones_hi),
                65536.0 / 2.0 + tau_ones, 2.0);
}

TEST(critical_values, runs_bounds_match_reference_at_midpoint)
{
    const auto cv = compute_critical_values(cfg_high, 0.01);
    const double n = 65536.0;
    const double e = nist::erfc_inv(0.01);
    for (const auto& iv : cv.t3_intervals) {
        const double ones =
            0.5 * static_cast<double>(iv.ones_lo + iv.ones_hi);
        const double pi = ones / n;
        const double center = 2.0 * n * pi * (1.0 - pi);
        const double c = 2.0 * std::sqrt(2.0 * n) * pi * (1.0 - pi) * e;
        EXPECT_NEAR(static_cast<double>(iv.runs_lo), center - c, 1.5);
        EXPECT_NEAR(static_cast<double>(iv.runs_hi), center + c, 1.5);
    }
}

TEST(critical_values, longest_run_weights_invert_pi)
{
    const auto cv = compute_critical_values(cfg_high, 0.01);
    const auto pi = nist::longest_run_category_probs(128, 4, 9);
    ASSERT_EQ(cv.t4_weights_q.size(), pi.size());
    for (std::size_t c = 0; c < pi.size(); ++c) {
        EXPECT_NEAR(static_cast<double>(cv.t4_weights_q[c]),
                    std::ldexp(1.0 / pi[c], 12), 1.0)
            << "category " << c;
    }
}

TEST(critical_values, cusum_bound_is_the_largest_accepting_z)
{
    const auto cv = compute_critical_values(cfg_high, 0.01);
    EXPECT_GE(nist::cumulative_sums_p_value(cv.t13_z_bound, 65536), 0.01);
    EXPECT_LT(nist::cumulative_sums_p_value(cv.t13_z_bound + 1, 65536),
              0.01);
}

TEST(critical_values, serial_bounds_scale_with_n)
{
    const auto cv16 = compute_critical_values(cfg_high, 0.01);
    const auto cv20 = compute_critical_values(
        core::paper_design(20, core::tier::high), 0.01);
    EXPECT_NEAR(static_cast<double>(cv20.t11_del1_bound),
                16.0 * static_cast<double>(cv16.t11_del1_bound), 16.0)
        << "bound = n * chi2_crit is linear in n";
}

TEST(critical_values, tighter_alpha_widens_acceptance)
{
    // Smaller alpha = fewer type-1 errors = larger thresholds.  This is
    // the paper's flexibility property: only constants change.
    const auto strict = compute_critical_values(cfg_high, 0.001);
    const auto loose = compute_critical_values(cfg_high, 0.01);
    EXPECT_GT(strict.t1_max_deviation, loose.t1_max_deviation);
    EXPECT_GT(strict.t2_sum_bound, loose.t2_sum_bound);
    EXPECT_GT(strict.t4_sum_bound, loose.t4_sum_bound);
    EXPECT_GT(strict.t7_sum_bound, loose.t7_sum_bound);
    EXPECT_GT(strict.t8_sum_bound, loose.t8_sum_bound);
    EXPECT_GT(strict.t11_del1_bound, loose.t11_del1_bound);
    EXPECT_GT(strict.t13_z_bound, loose.t13_z_bound);
    EXPECT_LT(strict.t12_apen_min_q16, loose.t12_apen_min_q16)
        << "the ApEn acceptance is a lower bound, so it moves down";
}

TEST(critical_values, computed_only_for_enabled_tests)
{
    const auto cfg = core::paper_design(16, core::tier::light);
    const auto cv = compute_critical_values(cfg, 0.01);
    EXPECT_EQ(cv.t7_sum_bound, 0);
    EXPECT_TRUE(cv.t8_weights_q.empty());
    EXPECT_EQ(cv.t11_del1_bound, 0);
    EXPECT_GT(cv.t1_max_deviation, 0);
    EXPECT_GT(cv.t13_z_bound, 0);
}

TEST(critical_values, apen_calibration_is_cached_and_deterministic)
{
    const auto a = compute_critical_values(cfg_high, 0.01);
    const auto b = compute_critical_values(cfg_high, 0.01);
    EXPECT_EQ(a.t12_apen_min_q16, b.t12_apen_min_q16);
    EXPECT_GT(a.t12_apen_min_q16, 0);
    // The threshold sits below the Q16 image of ln 2 (the statistic's
    // asymptote) but within a plausible distance of it.
    const std::int64_t ln2_q16 = 45426;
    EXPECT_LT(a.t12_apen_min_q16, ln2_q16);
    EXPECT_GT(a.t12_apen_min_q16, ln2_q16 - 3000);
}

TEST(critical_values, rejects_nonsense_alpha)
{
    EXPECT_THROW(compute_critical_values(cfg_high, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(compute_critical_values(cfg_high, 0.7),
                 std::invalid_argument);
}

TEST(critical_values, nist_alpha_range_is_supported)
{
    // NIST recommends alpha in [0.001, 0.01]; both ends must work for
    // every paper design.
    for (const auto& cfg : core::all_paper_designs()) {
        for (const double alpha : {0.001, 0.01}) {
            const auto cv = compute_critical_values(cfg, alpha);
            EXPECT_GT(cv.t1_max_deviation, 0) << cfg.name;
            EXPECT_GT(cv.t13_z_bound, 0) << cfg.name;
        }
    }
}

} // namespace
