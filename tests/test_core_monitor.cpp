// Tests of the on-the-fly monitor: statistical behaviour over many windows
// (type-1 rate near alpha for ideal sources, detection of every defect
// class), latency accounting against the paper's claims, and the
// health-monitor alarm policy.
#include "core/monitor.hpp"
#include "core/design_config.hpp"
#include "trng/ring_oscillator.hpp"
#include "trng/sources.hpp"

#include "support/fixed_seed.hpp"

#include <gtest/gtest.h>
#include <map>
#include <string>
#include <vector>

namespace {

using namespace otf;

hw::block_config fast_cfg()
{
    // A 4096-bit all-tests design keeps multi-window statistics cheap.
    return core::custom_design(
        12, hw::test_set{}
                .with(hw::test_id::frequency)
                .with(hw::test_id::block_frequency)
                .with(hw::test_id::runs)
                .with(hw::test_id::longest_run)
                .with(hw::test_id::non_overlapping_template)
                .with(hw::test_id::overlapping_template)
                .with(hw::test_id::serial)
                .with(hw::test_id::approximate_entropy)
                .with(hw::test_id::cumulative_sums));
}

TEST(monitor, ideal_source_pass_rate_close_to_one_minus_alpha)
{
    core::monitor mon(fast_cfg(), 0.01);
    trng::ideal_source src(2024);
    const unsigned windows = 300;
    unsigned passed = 0;
    for (unsigned w = 0; w < windows; ++w) {
        passed += mon.test_window(src).software.all_pass ? 1 : 0;
    }
    // Nine tests at alpha = 0.01 give an expected all-pass rate around
    // 0.92 (tests are not independent; cusum/frequency correlate).  Accept
    // a generous band; the point is that a healthy TRNG is *not* flagged.
    EXPECT_GT(passed, windows * 80 / 100);
    EXPECT_LT(passed, windows)
        << "with 300 windows some single-test failures must occur";
}

TEST(monitor, per_test_type1_rates_are_near_alpha)
{
    core::monitor mon(fast_cfg(), 0.01);
    trng::ideal_source src(777);
    const unsigned windows = 400;
    std::map<std::string, unsigned> failures;
    for (unsigned w = 0; w < windows; ++w) {
        const auto rep = mon.test_window(src);
        for (const auto& v : rep.software.verdicts) {
            if (!v.pass) {
                ++failures[v.name];
            }
        }
    }
    for (const auto& [name, count] : failures) {
        // Expected 4 failures per test; flag anything beyond 5x nominal.
        EXPECT_LE(count, 20u) << name << " rejects far above alpha";
    }
}

TEST(monitor, window_verdicts_are_reproducible_run_to_run)
{
    // The statistical tests above are tuned against the exact streams
    // their fixed seeds produce; this guards the premise.  Two monitors
    // fed identically-seeded sources must agree on every verdict, so any
    // hidden nondeterminism (shared RNG state, iteration-order dependence,
    // uninitialized engine state) fails this test deterministically
    // instead of flaking a type-1-rate band once in a thousand runs.
    core::monitor mon_a(fast_cfg(), 0.01);
    core::monitor mon_b(fast_cfg(), 0.01);
    trng::ideal_source src_a(otf::test::kCanonicalSeed);
    trng::ideal_source src_b(otf::test::kCanonicalSeed);
    for (unsigned w = 0; w < 30; ++w) {
        const auto rep_a = mon_a.test_window(src_a);
        const auto rep_b = mon_b.test_window(src_b);
        ASSERT_EQ(rep_a.software.verdicts.size(),
                  rep_b.software.verdicts.size());
        for (std::size_t i = 0; i < rep_a.software.verdicts.size(); ++i) {
            EXPECT_EQ(rep_a.software.verdicts[i].pass,
                      rep_b.software.verdicts[i].pass)
                << rep_a.software.verdicts[i].name << " at window " << w;
        }
    }
}

TEST(monitor, detects_stuck_source_immediately)
{
    core::monitor mon(fast_cfg(), 0.01);
    trng::stuck_source src(true);
    const auto rep = mon.test_window(src);
    EXPECT_FALSE(rep.software.all_pass);
    const auto* freq = rep.software.find(hw::test_id::frequency);
    ASSERT_NE(freq, nullptr);
    EXPECT_FALSE(freq->pass) << "total failure must trip the quick tests";
}

TEST(monitor, detects_moderate_bias)
{
    core::monitor mon(fast_cfg(), 0.01);
    trng::biased_source src(5, 0.56);
    unsigned failures = 0;
    for (unsigned w = 0; w < 20; ++w) {
        failures += mon.test_window(src).software.all_pass ? 0 : 1;
    }
    EXPECT_GE(failures, 18u) << "5.6% bias at n=4096 is far beyond tau";
}

TEST(monitor, detects_correlation_through_runs_and_serial)
{
    core::monitor mon(fast_cfg(), 0.01);
    trng::markov_source src(6, 0.60);
    const auto rep = mon.test_window(src);
    const auto* runs = rep.software.find(hw::test_id::runs);
    const auto* serial = rep.software.find(hw::test_id::serial);
    ASSERT_NE(runs, nullptr);
    ASSERT_NE(serial, nullptr);
    EXPECT_FALSE(runs->pass);
    EXPECT_FALSE(serial->pass);
}

TEST(monitor, detects_frequency_injection_attack)
{
    core::monitor mon(fast_cfg(), 0.01);
    trng::ring_oscillator_source src(11, {});

    unsigned healthy_failures = 0;
    for (unsigned w = 0; w < 10; ++w) {
        healthy_failures += mon.test_window(src).software.all_pass ? 0 : 1;
    }
    src.set_injection(0.95);
    unsigned attacked_failures = 0;
    for (unsigned w = 0; w < 10; ++w) {
        attacked_failures += mon.test_window(src).software.all_pass ? 0 : 1;
    }
    EXPECT_LE(healthy_failures, 3u);
    EXPECT_GE(attacked_failures, 9u)
        << "locking collapses jitter; the tests must see it";
}

TEST(monitor, detects_burst_failures)
{
    core::monitor mon(fast_cfg(), 0.01);
    trng::burst_failure_source src(8, 0.002, 256);
    unsigned failures = 0;
    for (unsigned w = 0; w < 10; ++w) {
        failures += mon.test_window(src).software.all_pass ? 0 : 1;
    }
    EXPECT_GE(failures, 8u)
        << "256-bit stuck bursts wreck longest-run and cusum";
}

TEST(monitor, software_latency_fits_generation_budget)
{
    // The paper's Table IV point: the software routine (thousands of
    // cycles on an MSP430-class core) is far below the n cycles the TRNG
    // needs to produce the next window.
    core::monitor mon(core::paper_design(16, core::tier::high), 0.01);
    trng::ideal_source src(9);
    const auto rep = mon.test_window(src);
    EXPECT_GT(rep.sw_cycles, 1000u) << "not a trivial computation";
    EXPECT_LT(rep.sw_cycles, rep.generation_cycles)
        << "testing must keep up with generation";
}

TEST(monitor, thirty_two_bit_platform_has_lower_latency)
{
    const auto cfg = core::paper_design(16, core::tier::high);
    core::monitor slow(cfg, 0.01, sw16::msp430_model());
    core::monitor fast(cfg, 0.01, sw16::cortex_like_model());
    trng::ideal_source a(4);
    trng::ideal_source b(4);
    const auto rep_slow = slow.test_window(a);
    const auto rep_fast = fast.test_window(b);
    EXPECT_LT(rep_fast.sw_cycles, rep_slow.sw_cycles)
        << "the paper's future-work projection";
}

TEST(monitor, lifetime_ops_accumulate)
{
    core::monitor mon(fast_cfg(), 0.01);
    trng::ideal_source src(1);
    const bit_sequence window = src.generate(1u << 12);
    (void)mon.test_sequence(window);
    const auto after_one = mon.lifetime_ops().total();
    (void)mon.test_sequence(window);
    EXPECT_EQ(mon.lifetime_ops().total(), 2 * after_one)
        << "identical windows cost identical instructions";
    EXPECT_EQ(mon.windows_tested(), 2u);
}

TEST(monitor, rejects_wrong_sequence_length)
{
    core::monitor mon(fast_cfg(), 0.01);
    EXPECT_THROW((void)mon.test_sequence(bit_sequence(100, true)),
                 std::invalid_argument);
}

TEST(health_monitor, alarm_after_threshold_failures)
{
    core::health_monitor hm(fast_cfg(), 0.01, {.fail_threshold = 2,
                                               .window = 8});
    trng::stuck_source bad(false);
    (void)hm.observe(bad);
    EXPECT_FALSE(hm.alarm()) << "one failure is below the threshold";
    (void)hm.observe(bad);
    EXPECT_TRUE(hm.alarm());
    EXPECT_EQ(hm.windows_failed(), 2u);
}

TEST(health_monitor, alarm_hook_fires_once_on_the_rising_edge)
{
    core::health_monitor hm(fast_cfg(), 0.01, {.fail_threshold = 2,
                                               .window = 8});
    std::vector<core::alarm_event> events;
    hm.on_alarm([&](const core::alarm_event& ev) {
        events.push_back(ev);
    });
    trng::stuck_source bad(false);
    for (int w = 0; w < 4; ++w) {
        (void)hm.observe(bad);
    }
    // The edge, not the level: one event, at the window that crossed
    // the threshold, carrying the evidence count.
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].window_index, 1u);
    EXPECT_EQ(events[0].recent_failures, 2u);
}

TEST(health_monitor, healthy_source_rarely_alarms)
{
    core::health_monitor hm(fast_cfg(), 0.01, {.fail_threshold = 3,
                                               .window = 8});
    trng::ideal_source src(31415);
    for (unsigned w = 0; w < 100; ++w) {
        (void)hm.observe(src);
    }
    EXPECT_FALSE(hm.alarm())
        << "3-in-8 coincidental failures at ~8% window failure rate is "
           "very unlikely";
}

TEST(health_monitor, tracks_failures_by_test)
{
    core::health_monitor hm(fast_cfg(), 0.01, {.fail_threshold = 2,
                                               .window = 4});
    trng::markov_source src(12, 0.65);
    for (unsigned w = 0; w < 5; ++w) {
        (void)hm.observe(src);
    }
    EXPECT_TRUE(hm.alarm());
    EXPECT_GT(hm.failures_by_test().count("runs"), 0u);
}

TEST(health_monitor, rejects_bad_policy)
{
    EXPECT_THROW(core::health_monitor(fast_cfg(), 0.01,
                                      {.fail_threshold = 0, .window = 4}),
                 std::invalid_argument);
    EXPECT_THROW(core::health_monitor(fast_cfg(), 0.01,
                                      {.fail_threshold = 9, .window = 4}),
                 std::invalid_argument);
}

} // namespace
