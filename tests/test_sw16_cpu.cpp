// Tests of the instruction-accounting software platform: arithmetic
// exactness, the multiword cost rules that regenerate Table III's SW rows,
// and the MCU cycle models.
#include "sw16/cpu.hpp"
#include "sw16/cycle_model.hpp"

#include <cstdint>
#include <gtest/gtest.h>
#include <string>

namespace {

using namespace otf::sw16;

TEST(soft_cpu, words_decomposes_by_native_width)
{
    soft_cpu cpu16(16);
    EXPECT_EQ(cpu16.words(1), 1u);
    EXPECT_EQ(cpu16.words(16), 1u);
    EXPECT_EQ(cpu16.words(17), 2u);
    EXPECT_EQ(cpu16.words(32), 2u);
    EXPECT_EQ(cpu16.words(33), 3u);
    soft_cpu cpu32(32);
    EXPECT_EQ(cpu32.words(33), 2u);
}

TEST(soft_cpu, add_charges_one_add_per_word)
{
    soft_cpu cpu(16);
    const reg a{1000, 16};
    const reg b{2000, 16};
    const reg c = cpu.add(a, b);
    EXPECT_EQ(c.value, 3000);
    // Result width 17 -> 2 words on a 16-bit core.
    EXPECT_EQ(cpu.counts().add, 2u);
}

TEST(soft_cpu, narrow_add_is_single_instruction)
{
    soft_cpu cpu(16);
    (void)cpu.add(reg{3, 8}, reg{4, 7});
    EXPECT_EQ(cpu.counts().add, 1u);
}

TEST(soft_cpu, mul_charges_limb_products_and_accumulation)
{
    soft_cpu cpu(16);
    // 20-bit x 20-bit = 2x2 limbs: 4 MUL + 4 accumulation ADD.
    const reg c = cpu.mul(reg{1 << 19, 20}, reg{3, 20});
    EXPECT_EQ(c.value, (std::int64_t{1} << 19) * 3);
    EXPECT_EQ(cpu.counts().mul, 4u);
    EXPECT_EQ(cpu.counts().add, 4u);
}

TEST(soft_cpu, single_word_mul_has_no_accumulation)
{
    soft_cpu cpu(16);
    (void)cpu.mul(reg{100, 8}, reg{50, 8});
    EXPECT_EQ(cpu.counts().mul, 1u);
    EXPECT_EQ(cpu.counts().add, 0u);
}

TEST(soft_cpu, sqr_uses_squarer_for_diagonal_terms)
{
    soft_cpu cpu(16);
    // 20-bit square = 2 limbs: 2 SQR + 1 cross MUL + accumulation.
    const reg c = cpu.sqr(reg{1 << 18, 20});
    EXPECT_EQ(c.value, (std::int64_t{1} << 36));
    EXPECT_EQ(cpu.counts().sqr, 2u);
    EXPECT_EQ(cpu.counts().mul, 1u);
}

TEST(soft_cpu, sqr_value_exact_for_large_inputs)
{
    soft_cpu cpu(16);
    const reg c = cpu.sqr(reg{1048575, 21});
    EXPECT_EQ(c.value, std::int64_t{1048575} * 1048575);
}

TEST(soft_cpu, shifts_change_width_and_value)
{
    soft_cpu cpu(16);
    reg a{5, 8};
    a = cpu.shift_left(a, 4);
    EXPECT_EQ(a.value, 80);
    EXPECT_EQ(a.bits, 12u);
    a = cpu.shift_right(a, 4);
    EXPECT_EQ(a.value, 5);
    EXPECT_GE(cpu.counts().shift, 2u);
}

TEST(soft_cpu, comparisons_charge_comp_per_word)
{
    soft_cpu cpu(16);
    EXPECT_TRUE(cpu.less(reg{1, 32}, reg{2, 32}));
    EXPECT_EQ(cpu.counts().comp, 2u);
    EXPECT_FALSE(cpu.less(reg{2, 8}, reg{1, 8}));
    EXPECT_EQ(cpu.counts().comp, 3u);
}

TEST(soft_cpu, comparison_family_is_consistent)
{
    soft_cpu cpu(16);
    const reg a{5, 8};
    const reg b{7, 8};
    EXPECT_TRUE(cpu.less(a, b));
    EXPECT_TRUE(cpu.less_equal(a, b));
    EXPECT_TRUE(cpu.less_equal(a, a));
    EXPECT_TRUE(cpu.greater(b, a));
    EXPECT_TRUE(cpu.greater_equal(a, a));
}

TEST(soft_cpu, abs_charges_conditional_negate)
{
    soft_cpu cpu(16);
    EXPECT_EQ(cpu.abs(reg{-5, 8}).value, 5);
    EXPECT_EQ(cpu.counts().sub, 1u);
    EXPECT_EQ(cpu.abs(reg{5, 8}).value, 5);
    EXPECT_EQ(cpu.counts().sub, 1u) << "positive input does not negate";
}

TEST(soft_cpu, min_max_track_values)
{
    soft_cpu cpu(16);
    EXPECT_EQ(cpu.max(reg{3, 8}, reg{9, 8}).value, 9);
    EXPECT_EQ(cpu.min(reg{3, 8}, reg{9, 8}).value, 3);
}

TEST(soft_cpu, reads_decompose_into_words)
{
    soft_cpu cpu(16);
    cpu.charge_read(22); // a 22-bit counter arrives as two bus words
    EXPECT_EQ(cpu.counts().read, 2u);
    soft_cpu wide(32);
    wide.charge_read(22);
    EXPECT_EQ(wide.counts().read, 1u);
}

TEST(soft_cpu, reset_counts_clears_everything)
{
    soft_cpu cpu(16);
    (void)cpu.add(reg{1, 16}, reg{1, 16});
    cpu.charge_lut(3);
    cpu.reset_counts();
    EXPECT_EQ(cpu.counts().total(), 0u);
}

TEST(soft_cpu, rejects_exotic_word_widths)
{
    EXPECT_THROW(soft_cpu(12), std::invalid_argument);
    EXPECT_THROW(soft_cpu(64), std::invalid_argument);
}

TEST(op_counts, arithmetic_and_formatting)
{
    op_counts a;
    a.add = 5;
    a.mul = 2;
    op_counts b;
    b.add = 3;
    b.read = 7;
    const op_counts sum = a + b;
    EXPECT_EQ(sum.add, 8u);
    EXPECT_EQ(sum.read, 7u);
    const op_counts diff = sum - b;
    EXPECT_EQ(diff.add, 5u);
    EXPECT_EQ(diff.read, 0u);
    EXPECT_EQ(sum.total(), 8u + 2u + 7u);
    const std::string s = to_string(sum);
    EXPECT_NE(s.find("ADD=8"), std::string::npos);
    EXPECT_NE(s.find("READ=7"), std::string::npos);
}

TEST(bits_for, unsigned_and_signed_widths)
{
    EXPECT_EQ(bits_for_unsigned(0), 1u);
    EXPECT_EQ(bits_for_unsigned(1), 1u);
    EXPECT_EQ(bits_for_unsigned(2), 2u);
    EXPECT_EQ(bits_for_unsigned(255), 8u);
    EXPECT_EQ(bits_for_unsigned(256), 9u);
    EXPECT_EQ(bits_for_signed(127), 8u);
    EXPECT_EQ(bits_for_signed(-128), 8u + 1u)
        << "conservative symmetric sizing";
}

TEST(cycle_model, msp430_multiplies_are_expensive)
{
    const cycle_model m = msp430_model();
    op_counts ops;
    ops.mul = 10;
    ops.add = 10;
    EXPECT_GT(m.cycles(ops), 10u * m.add + 10u * m.add)
        << "peripheral multiplier costs more than ALU adds";
}

TEST(cycle_model, thirty_two_bit_platform_is_faster)
{
    const cycle_model slow = msp430_model();
    const cycle_model fast = cortex_like_model();
    op_counts ops;
    ops.add = 100;
    ops.mul = 50;
    ops.read = 30;
    EXPECT_LT(fast.cycles(ops), slow.cycles(ops));
}

} // namespace
