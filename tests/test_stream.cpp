// Tests of the streaming ingestion core (core/stream.hpp): pipeline
// verdicts register-exact with the batch loops across every paper design
// and both ingestion lanes, monitor::run_stream continuous mode, the
// producer's word-granular hook (scenario severity stepping), open-ended
// and fixed-length end-of-stream behaviour, early sink stop, and the
// stream telemetry snapshot.
#include "base/ring_buffer.hpp"
#include "core/design_config.hpp"
#include "core/monitor.hpp"
#include "core/scenario.hpp"
#include "core/stream.hpp"
#include "trng/source_model.hpp"
#include "trng/sources.hpp"

#include "support/fixed_seed.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace {

using namespace otf;
using test::fixture_seed;

void expect_same_report(const core::window_report& a,
                        const core::window_report& b,
                        const std::string& context)
{
    EXPECT_EQ(a.window_index, b.window_index) << context;
    EXPECT_EQ(a.software.all_pass, b.software.all_pass) << context;
    ASSERT_EQ(a.software.verdicts.size(), b.software.verdicts.size())
        << context;
    for (std::size_t i = 0; i < a.software.verdicts.size(); ++i) {
        EXPECT_EQ(a.software.verdicts[i].name,
                  b.software.verdicts[i].name)
            << context;
        EXPECT_EQ(a.software.verdicts[i].pass,
                  b.software.verdicts[i].pass)
            << context << ": " << a.software.verdicts[i].name;
        EXPECT_EQ(a.software.verdicts[i].statistic,
                  b.software.verdicts[i].statistic)
            << context << ": " << a.software.verdicts[i].name;
        EXPECT_EQ(a.software.verdicts[i].bound,
                  b.software.verdicts[i].bound)
            << context << ": " << a.software.verdicts[i].name;
    }
    EXPECT_EQ(a.sw_cycles, b.sw_cycles) << context;
    EXPECT_EQ(a.generation_cycles, b.generation_cycles) << context;
}

/// Run `windows` through the streaming pipeline and return the reports.
std::vector<core::window_report> streamed_windows(
    const hw::block_config& cfg, std::uint64_t seed,
    std::uint64_t windows, core::ingest_lane lane)
{
    core::monitor mon(cfg, 0.01);
    trng::ideal_source src(seed);
    const std::size_t nwords = static_cast<std::size_t>(cfg.n() / 64);
    base::ring_buffer ring(2 * nwords);
    core::producer_options opts;
    opts.total_words = windows * nwords;
    core::word_producer producer(src, ring, opts);
    core::window_pump pump(ring, mon, lane);
    std::vector<core::window_report> reports;
    core::run_pipeline(producer, pump,
                       [&](const core::window_report& wr) {
                           reports.push_back(wr);
                           return true;
                       },
                       windows);
    return reports;
}

// ---------------------------------------------------------------------------
// Pipeline verdicts are register-exact with the batch loops: all eight
// paper designs, both ingestion lanes (the acceptance oracle).
// ---------------------------------------------------------------------------

TEST(stream, pipeline_matches_batch_word_lane_all_designs)
{
    for (const hw::block_config& cfg : core::all_paper_designs()) {
        const std::uint64_t windows = cfg.n() > 100000 ? 2 : 3;
        core::monitor batch(cfg, 0.01);
        trng::ideal_source batch_src(fixture_seed(21));
        const auto streamed = streamed_windows(
            cfg, fixture_seed(21), windows, core::ingest_lane::word);
        ASSERT_EQ(streamed.size(), windows) << cfg.name;
        for (std::uint64_t w = 0; w < windows; ++w) {
            const auto ref = batch.test_window_words(batch_src);
            expect_same_report(ref, streamed[w],
                               cfg.name + " window "
                                   + std::to_string(w));
        }
    }
}

TEST(stream, pipeline_matches_batch_per_bit_lane_all_designs)
{
    for (const hw::block_config& cfg : core::all_paper_designs()) {
        const std::uint64_t windows = 2;
        core::monitor batch(cfg, 0.01);
        trng::ideal_source batch_src(fixture_seed(22));
        const auto streamed = streamed_windows(
            cfg, fixture_seed(22), windows, core::ingest_lane::per_bit);
        ASSERT_EQ(streamed.size(), windows) << cfg.name;
        for (std::uint64_t w = 0; w < windows; ++w) {
            const auto ref = batch.test_window(batch_src);
            expect_same_report(ref, streamed[w],
                               cfg.name + " window "
                                   + std::to_string(w));
        }
    }
}

// ---------------------------------------------------------------------------
// monitor::run_stream -- the continuous mode.
// ---------------------------------------------------------------------------

TEST(stream, run_stream_drains_a_prefilled_ring_single_threaded)
{
    // A ring that was filled and closed before the pump starts is the
    // single-threaded degenerate pipeline: run_stream must drain it
    // completely without any producer thread.
    const hw::block_config cfg =
        core::paper_design(7, core::tier::light);
    const std::size_t nwords = static_cast<std::size_t>(cfg.n() / 64);
    const std::uint64_t windows = 5;

    trng::ideal_source src(fixture_seed(23));
    const auto words = src.generate_words(windows * nwords);
    base::ring_buffer ring(words.size());
    ASSERT_EQ(ring.try_push(words.data(), words.size()), words.size());
    ring.close();

    core::monitor mon(cfg, 0.01);
    core::monitor batch(cfg, 0.01);
    trng::ideal_source batch_src(fixture_seed(23));
    std::uint64_t seen = 0;
    const std::uint64_t done = mon.run_stream(
        ring,
        [&](const core::window_report& wr) {
            expect_same_report(batch.test_window_words(batch_src), wr,
                               "window " + std::to_string(seen));
            ++seen;
            return true;
        });
    EXPECT_EQ(done, windows);
    EXPECT_EQ(seen, windows);
    EXPECT_TRUE(ring.drained());
}

TEST(stream, run_stream_open_ended_stops_via_sink)
{
    // Open-ended supervision: no window count anywhere -- the producer
    // streams forever and the *sink* ends the run (here: after an alarm
    // fires), the platform's continuous-monitoring deployment shape.
    const hw::block_config cfg =
        core::paper_design(7, core::tier::light);
    const std::size_t nwords = static_cast<std::size_t>(cfg.n() / 64);
    core::monitor mon(cfg, 0.01);
    core::windowed_alarm alarm(2, 8);
    trng::stuck_source src(true); // fails every window
    base::ring_buffer ring(2 * nwords);
    core::word_producer producer(src, ring, {}); // total_words = 0
    core::window_pump pump(ring, mon);
    const std::uint64_t done = core::run_pipeline(
        producer, pump,
        [&](const core::window_report& wr) {
            return !alarm.record(!wr.software.all_pass);
        });
    EXPECT_TRUE(alarm.alarm());
    EXPECT_EQ(done, 2u); // second failed window trips the 2-of-8 policy
    EXPECT_EQ(mon.windows_tested(), 2u);
}

// ---------------------------------------------------------------------------
// Producer hook: the scenario severity path, advanced at word
// granularity yet bit-exact with per-window stepping.
// ---------------------------------------------------------------------------

TEST(stream, producer_hook_fires_at_stride_boundaries)
{
    const hw::block_config cfg =
        core::paper_design(7, core::tier::light);
    const std::size_t nwords = static_cast<std::size_t>(cfg.n() / 64);
    const std::uint64_t windows = 4;

    trng::ideal_source src(fixture_seed(24));
    base::ring_buffer ring(windows * nwords);
    core::producer_options opts;
    opts.total_words = windows * nwords;
    opts.batch_words = 3; // ragged: batches would cross boundaries
    opts.hook_stride_words = nwords;
    std::vector<std::uint64_t> hook_words;
    opts.word_hook = [&](std::uint64_t word) {
        hook_words.push_back(word);
    };
    core::word_producer producer(src, ring, opts);
    producer.run();
    producer.rethrow_if_failed();

    ASSERT_EQ(hook_words.size(), windows);
    for (std::uint64_t w = 0; w < windows; ++w) {
        EXPECT_EQ(hook_words[w], w * nwords)
            << "hook must land exactly on the window-boundary word";
    }
}

TEST(stream, streamed_severity_schedule_is_bit_exact_with_batch)
{
    // Reference: the pre-pipeline scenario trial loop -- set severity per
    // window, then generate-and-test that window.  Streamed: the
    // schedule rides the producer's word hook.  Verdicts must match
    // exactly, window by window.
    const hw::block_config cfg =
        core::custom_design(12, hw::test_set{}
                                    .with(hw::test_id::frequency)
                                    .with(hw::test_id::block_frequency)
                                    .with(hw::test_id::runs)
                                    .with(hw::test_id::longest_run)
                                    .with(hw::test_id::cumulative_sums));
    const std::size_t nwords = static_cast<std::size_t>(cfg.n() / 64);
    const std::uint64_t windows = 12;
    core::severity_schedule schedule{
        core::severity_schedule::shape::ramp, 1.0, 4, 6, 0};

    // Batch reference.
    core::monitor batch(cfg, 0.01);
    trng::rtn_source batch_model(
        std::make_unique<trng::ideal_source>(fixture_seed(25)),
        fixture_seed(26));
    std::vector<core::window_report> ref;
    for (std::uint64_t w = 0; w < windows; ++w) {
        batch_model.set_severity(schedule.severity_at(w));
        ref.push_back(batch.test_window_words(batch_model));
    }

    // Streamed with the word hook.
    core::monitor mon(cfg, 0.01);
    trng::rtn_source model(
        std::make_unique<trng::ideal_source>(fixture_seed(25)),
        fixture_seed(26));
    base::ring_buffer ring(2 * nwords);
    core::producer_options opts;
    opts.total_words = windows * nwords;
    opts.hook_stride_words = nwords;
    opts.word_hook = [&](std::uint64_t word) {
        model.set_severity(schedule.severity_at(word / nwords));
    };
    core::word_producer producer(model, ring, opts);
    core::window_pump pump(ring, mon);
    std::vector<core::window_report> streamed;
    core::run_pipeline(producer, pump,
                       [&](const core::window_report& wr) {
                           streamed.push_back(wr);
                           return true;
                       },
                       windows);

    ASSERT_EQ(streamed.size(), ref.size());
    for (std::uint64_t w = 0; w < windows; ++w) {
        expect_same_report(ref[w], streamed[w],
                           "window " + std::to_string(w));
    }
}

// ---------------------------------------------------------------------------
// End-of-stream behaviour.
// ---------------------------------------------------------------------------

TEST(stream, open_ended_replay_closes_gracefully_with_leftover)
{
    // A finite trace in open-ended mode is not an error: the producer
    // closes after the last full word and the pump counts the partial
    // trailing window as leftover.
    const hw::block_config cfg =
        core::paper_design(7, core::tier::light);
    const std::size_t nwords = static_cast<std::size_t>(cfg.n() / 64);
    const std::uint64_t full_windows = 3;
    // 3 windows + 1 stray word + 7 stray bits.
    trng::ideal_source gen(fixture_seed(27));
    trng::replay_source src(
        gen.generate(full_windows * cfg.n() + 64 + 7));

    core::monitor mon(cfg, 0.01);
    base::ring_buffer ring(2 * nwords);
    core::word_producer producer(src, ring, {}); // open-ended
    core::window_pump pump(ring, mon);
    const std::uint64_t done =
        core::run_pipeline(producer, pump, nullptr);
    EXPECT_EQ(done, full_windows);
    EXPECT_EQ(pump.leftover_words(), 1u);
    EXPECT_EQ(producer.words_produced(), full_windows * nwords + 1);
    EXPECT_FALSE(producer.failed());
}

TEST(stream, fixed_total_throws_when_the_source_runs_dry)
{
    const hw::block_config cfg =
        core::paper_design(7, core::tier::light);
    const std::size_t nwords = static_cast<std::size_t>(cfg.n() / 64);
    trng::ideal_source gen(fixture_seed(28));
    trng::replay_source src(gen.generate(cfg.n())); // one window only

    core::monitor mon(cfg, 0.01);
    base::ring_buffer ring(2 * nwords);
    core::producer_options opts;
    opts.total_words = 3 * nwords; // asks for three
    core::word_producer producer(src, ring, opts);
    core::window_pump pump(ring, mon);
    try {
        core::run_pipeline(producer, pump, nullptr, 3);
        FAIL() << "expected the dry source to surface as an error";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("replay"), std::string::npos) << what;
        EXPECT_NE(what.find("ran dry"), std::string::npos) << what;
    }
    // The windows that were fully buffered before the starvation were
    // still analysed -- data already generated is never thrown away.
    EXPECT_EQ(mon.windows_tested(), 1u);
}

TEST(stream, telemetry_snapshot_counts_the_words)
{
    const hw::block_config cfg =
        core::paper_design(7, core::tier::light);
    const std::size_t nwords = static_cast<std::size_t>(cfg.n() / 64);
    const std::uint64_t windows = 6;
    core::monitor mon(cfg, 0.01);
    trng::ideal_source src(fixture_seed(29));
    base::ring_buffer ring(2 * nwords);
    core::producer_options opts;
    opts.total_words = windows * nwords;
    core::word_producer producer(src, ring, opts);
    core::window_pump pump(ring, mon);
    core::run_pipeline(producer, pump, nullptr, windows);

    const core::stream_stats stats = core::snapshot(ring);
    EXPECT_EQ(stats.words, windows * nwords);
    EXPECT_EQ(stats.ring_capacity, ring.capacity());
    EXPECT_GE(stats.max_occupancy, 1u);
    EXPECT_LE(stats.max_occupancy, stats.ring_capacity);
}

// ---------------------------------------------------------------------------
// Window tap (evidence capture) and the mid-stream reconfiguration
// barrier (core/supervisor.hpp builds on both).
// ---------------------------------------------------------------------------

TEST(stream, tap_sees_exactly_the_raw_window_words)
{
    const hw::block_config cfg =
        core::paper_design(7, core::tier::light);
    const std::size_t nwords = 2; // 128-bit windows
    const std::uint64_t windows = 6;

    core::monitor mon(cfg, 0.01);
    trng::ideal_source src(fixture_seed(21));
    base::ring_buffer ring(2 * nwords);
    core::producer_options opts;
    opts.total_words = windows * nwords;
    core::word_producer producer(src, ring, opts);
    core::window_pump pump(ring, mon);
    std::vector<std::uint64_t> tapped;
    std::vector<std::uint64_t> tap_indexes;
    pump.set_tap([&](std::uint64_t index, const std::uint64_t* words,
                     std::size_t n) {
        tap_indexes.push_back(index);
        tapped.insert(tapped.end(), words, words + n);
    });
    core::run_pipeline(producer, pump, nullptr, windows);

    // The tap must have seen the producer's exact word stream, window by
    // window, before testing.
    trng::ideal_source replay(fixture_seed(21));
    const std::vector<std::uint64_t> expected =
        replay.generate_words(windows * nwords);
    EXPECT_EQ(tapped, expected);
    EXPECT_EQ(tap_indexes,
              (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5}));
}

TEST(stream, untapped_pump_takes_the_zero_copy_path)
{
    // Without a tap every window should be fed straight from ring
    // storage (peek/consume), and the verdicts must match a tapped run
    // of the same stream, which takes the assemble-copy path.
    const hw::block_config cfg =
        core::paper_design(7, core::tier::light);
    const std::size_t nwords = 2;
    const std::uint64_t windows = 8;

    const auto run = [&](bool tapped) {
        core::monitor mon(cfg, 0.01);
        trng::ideal_source src(fixture_seed(24));
        base::ring_buffer ring(2 * nwords);
        core::producer_options opts;
        opts.total_words = windows * nwords;
        core::word_producer producer(src, ring, opts);
        core::window_pump pump(ring, mon);
        if (tapped) {
            pump.set_tap([](std::uint64_t, const std::uint64_t*,
                            std::size_t) {});
        }
        std::vector<core::window_report> reports;
        core::run_pipeline(producer, pump,
                           [&](const core::window_report& wr) {
                               reports.push_back(wr);
                               return true;
                           },
                           windows);
        return std::make_pair(pump.zero_copy_windows(),
                              std::move(reports));
    };

    const auto [zc_untapped, direct] = run(false);
    const auto [zc_tapped, copied] = run(true);

    EXPECT_EQ(zc_untapped, windows)
        << "every untapped window must be fed from ring storage";
    EXPECT_EQ(zc_tapped, 0u)
        << "the tap contract (contiguous window) forces the copy path";
    ASSERT_EQ(direct.size(), copied.size());
    for (std::uint64_t w = 0; w < windows; ++w) {
        expect_same_report(direct[w], copied[w],
                           "window " + std::to_string(w));
    }
}

TEST(stream, zero_copy_survives_windows_larger_than_the_ring_span)
{
    // A window of 8 words over a ring of 4 forces every window through
    // multiple peek/consume rounds (spans clip at the buffer end); the
    // partial window must persist as block state between rounds.
    const hw::block_config cfg = core::custom_design(
        9, hw::test_set{}
               .with(hw::test_id::frequency)
               .with(hw::test_id::runs)); // 512-bit windows, 8 words
    const std::size_t nwords = 8;
    const std::uint64_t windows = 5;

    core::monitor mon(cfg, 0.01);
    trng::ideal_source src(fixture_seed(25));
    base::ring_buffer ring(nwords / 2);
    core::producer_options opts;
    opts.total_words = windows * nwords;
    opts.batch_words = 2;
    core::word_producer producer(src, ring, opts);
    core::window_pump pump(ring, mon);
    std::vector<core::window_report> reports;
    core::run_pipeline(producer, pump,
                       [&](const core::window_report& wr) {
                           reports.push_back(wr);
                           return true;
                       },
                       windows);

    EXPECT_EQ(pump.zero_copy_windows(), windows);
    ASSERT_EQ(reports.size(), windows);
    // Register-exact with the batch loop over the same stream.
    core::monitor batch(cfg, 0.01);
    trng::ideal_source replay(fixture_seed(25));
    for (std::uint64_t w = 0; w < windows; ++w) {
        const auto ref = batch.test_window_words(replay);
        expect_same_report(ref, reports[w],
                           "window " + std::to_string(w));
    }
}

TEST(stream, barrier_reconfigures_mid_stream_without_dropping_words)
{
    // 20 words: two 128-bit windows at design A, then the barrier
    // reprograms the live block to the 4x-longer design B and the pump
    // re-frames -- the remaining 16 words become two 512-bit windows.
    const hw::block_config design_a =
        core::paper_design(7, core::tier::light);
    const hw::block_config design_b = core::custom_design(
        9, hw::test_set{}
               .with(hw::test_id::frequency)
               .with(hw::test_id::runs)
               .with(hw::test_id::cumulative_sums));

    core::monitor mon(design_a, 0.01);
    trng::ideal_source src(fixture_seed(22));
    base::ring_buffer ring(16);
    core::producer_options opts;
    opts.total_words = 20;
    core::word_producer producer(src, ring, opts);
    core::window_pump pump(ring, mon);
    pump.set_barrier([&](std::uint64_t next_window) {
        if (next_window == 2) {
            mon.reconfigure(design_b, 0.01);
        }
    });
    std::vector<core::window_report> reports;
    const std::uint64_t pumped = core::run_pipeline(
        producer, pump,
        [&](const core::window_report& wr) {
            reports.push_back(wr);
            return true;
        },
        0);

    ASSERT_EQ(pumped, 4u);
    EXPECT_EQ(pump.leftover_words(), 0u) << "no word may be dropped";

    // Register-exactness of the split: fresh monitors fed the same word
    // stream must reproduce every verdict.
    trng::ideal_source replay(fixture_seed(22));
    const std::vector<std::uint64_t> words = replay.generate_words(20);
    core::monitor fresh_a(design_a, 0.01);
    core::monitor fresh_b(design_b, 0.01);
    const auto window_of = [&](core::monitor& m, std::size_t from,
                               std::size_t count, std::uint64_t index) {
        auto wr = m.test_packed(words.data() + from, count);
        // The fresh monitors start counting at 0; align to the live
        // monitor's continuous window count.
        wr.window_index = index;
        return wr;
    };
    expect_same_report(reports[0], window_of(fresh_a, 0, 2, 0),
                       "A window 0");
    expect_same_report(reports[1], window_of(fresh_a, 2, 2, 1),
                       "A window 1");
    expect_same_report(reports[2], window_of(fresh_b, 4, 8, 2),
                       "B window 2");
    expect_same_report(reports[3], window_of(fresh_b, 12, 8, 3),
                       "B window 3");
}

} // namespace
