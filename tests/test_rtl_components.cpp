// Unit tests for the RTL component models: functional behaviour (wrap,
// saturation, tracking, shifting) and structural bookkeeping (reset
// recursion, hierarchy audit).
#include "rtl/arith.hpp"
#include "rtl/comparators.hpp"
#include "rtl/counter.hpp"
#include "rtl/mux.hpp"
#include "rtl/registers.hpp"
#include "rtl/shift_register.hpp"

#include <gtest/gtest.h>
#include <string>

namespace {

using namespace otf::rtl;

TEST(counter, counts_and_wraps_at_width)
{
    counter c("c", 3);
    for (int i = 0; i < 7; ++i) {
        c.step();
    }
    EXPECT_EQ(c.value(), 7u);
    c.step();
    EXPECT_EQ(c.value(), 0u) << "3-bit counter must wrap at 8";
}

TEST(counter, enable_gates_the_step)
{
    counter c("c", 8);
    c.step(false);
    EXPECT_EQ(c.value(), 0u);
    c.step(true);
    EXPECT_EQ(c.value(), 1u);
}

TEST(counter, clear_resets_value)
{
    counter c("c", 8);
    c.step();
    c.step();
    c.clear();
    EXPECT_EQ(c.value(), 0u);
}

TEST(counter, rejects_invalid_width)
{
    EXPECT_THROW(counter("c", 0), std::invalid_argument);
    EXPECT_THROW(counter("c", 64), std::invalid_argument);
}

TEST(counter, load_masks_to_width)
{
    counter c("c", 4);
    c.load(0xFFu);
    EXPECT_EQ(c.value(), 0xFu);
}

TEST(saturating_counter, sticks_at_maximum)
{
    saturating_counter c("c", 2);
    for (int i = 0; i < 10; ++i) {
        c.step();
    }
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.saturated());
}

TEST(saturating_counter, costs_more_than_plain_counter)
{
    counter plain("p", 8);
    saturating_counter sat("s", 8);
    EXPECT_GT(sat.cost().luts, plain.cost().luts)
        << "saturation adds the all-ones detect";
    EXPECT_EQ(sat.cost().ffs, plain.cost().ffs);
}

TEST(up_down_counter, tracks_walk)
{
    up_down_counter c("c", 8);
    c.step(true);
    c.step(true);
    c.step(false);
    EXPECT_EQ(c.value(), 1);
    c.step(false);
    c.step(false);
    EXPECT_EQ(c.value(), -1);
}

TEST(up_down_counter, range_matches_width)
{
    up_down_counter c("c", 4);
    EXPECT_EQ(c.min_representable(), -8);
    EXPECT_EQ(c.max_representable(), 7);
}

TEST(max_tracker, keeps_maximum_only)
{
    max_tracker t("t", 8);
    t.observe(3);
    t.observe(-5);
    t.observe(7);
    t.observe(2);
    EXPECT_EQ(t.value(), 7);
}

TEST(min_tracker, keeps_minimum_only)
{
    min_tracker t("t", 8);
    t.observe(3);
    t.observe(-5);
    t.observe(-2);
    EXPECT_EQ(t.value(), -5);
}

TEST(trackers, start_at_zero_like_the_walk)
{
    max_tracker mx("mx", 8);
    min_tracker mn("mn", 8);
    // A walk that never goes positive leaves S_max at 0, and vice versa.
    mx.observe(-3);
    mn.observe(4);
    EXPECT_EQ(mx.value(), 0);
    EXPECT_EQ(mn.value(), 0);
}

TEST(data_register, loads_and_masks)
{
    data_register r("r", 4);
    r.load(0x1F);
    EXPECT_EQ(r.value(), 0xFu);
}

TEST(register_bank, stores_and_reads_slots)
{
    register_bank bank("b", 4, 6);
    bank.write(0, 10);
    bank.write(3, 63);
    EXPECT_EQ(bank.read(0), 10u);
    EXPECT_EQ(bank.read(3), 63u);
    EXPECT_EQ(bank.read(1), 0u);
}

TEST(register_bank, throws_on_out_of_range_slot)
{
    register_bank bank("b", 4, 6);
    EXPECT_THROW(bank.write(4, 1), std::out_of_range);
    EXPECT_THROW((void)bank.read(7), std::out_of_range);
}

TEST(register_bank, shallow_banks_use_ffs_deep_banks_use_lutram)
{
    register_bank shallow("s", 4, 8);
    register_bank deep("d", 64, 8);
    EXPECT_EQ(shallow.cost().ffs, 4u * 8u);
    EXPECT_EQ(deep.cost().ffs, 0u) << "deep banks infer LUT-RAM";
    EXPECT_GT(deep.cost().luts, 0u);
}

TEST(shift_register, window_is_lsb_newest)
{
    shift_register sr("sr", 4);
    sr.shift(true);  // t-3 ... oldest
    sr.shift(false);
    sr.shift(true);
    sr.shift(true);  // newest
    // window bit0 = newest (1), bit1 = 1, bit2 = 0, bit3 = oldest (1)
    EXPECT_EQ(sr.window(), 0b1011u);
}

TEST(shift_register, fill_tracks_priming)
{
    shift_register sr("sr", 3);
    EXPECT_FALSE(sr.full());
    sr.shift(true);
    sr.shift(true);
    EXPECT_FALSE(sr.full());
    sr.shift(true);
    EXPECT_TRUE(sr.full());
}

TEST(shift_register, drops_bits_older_than_length)
{
    shift_register sr("sr", 2);
    sr.shift(true);
    sr.shift(false);
    sr.shift(false);
    EXPECT_EQ(sr.window(), 0u);
}

TEST(pattern_matcher, equality_against_constant)
{
    pattern_matcher m("m", 9, 0b000000001);
    EXPECT_TRUE(m.matches(0b000000001));
    EXPECT_FALSE(m.matches(0b100000001));
    // Bits above the width are ignored.
    EXPECT_TRUE(m.matches(0b1111000000001 & 0x1FF));
}

TEST(magnitude_comparator, at_least_threshold)
{
    magnitude_comparator c("c", 8, 100);
    EXPECT_TRUE(c.at_least(100));
    EXPECT_TRUE(c.at_least(255));
    EXPECT_FALSE(c.at_least(99));
}

TEST(multiplier, multiplies_and_reports_width)
{
    multiplier m("m", 8, 8);
    EXPECT_EQ(m.multiply(200, 200), 40000u);
    EXPECT_EQ(m.result_width(), 16u);
}

TEST(accumulator, accumulates_with_wrap_mask)
{
    accumulator a("a", 8);
    a.accumulate(200);
    a.accumulate(100);
    EXPECT_EQ(a.value(), 44u) << "8-bit accumulator wraps mod 256";
    a.clear();
    EXPECT_EQ(a.value(), 0u);
}

TEST(readout_mux, depth_is_log4_of_inputs)
{
    EXPECT_EQ(readout_mux("m", 1, 16).depth(), 0u);
    EXPECT_EQ(readout_mux("m", 4, 16).depth(), 1u);
    EXPECT_EQ(readout_mux("m", 5, 16).depth(), 2u);
    EXPECT_EQ(readout_mux("m", 64, 16).depth(), 3u);
    EXPECT_EQ(readout_mux("m", 128, 16).depth(), 4u);
}

TEST(readout_mux, rejects_more_than_7_bit_addressing)
{
    EXPECT_THROW(readout_mux("m", 129, 16), std::invalid_argument);
}

// A small composite verifies hierarchy recursion: cost sums children and
// reset reaches them.
class composite : public component {
public:
    composite() : component("composite"), a_("a", 4), b_("b", 8)
    {
        adopt(a_);
        adopt(b_);
    }
    counter a_;
    counter b_;

protected:
    resources self_cost() const override
    {
        return resources{.ffs = 1, .luts = 1, .carry_bits = 0,
                         .mux_levels = 0};
    }
    void self_reset() override {}
};

TEST(component, cost_recurses_over_children)
{
    composite c;
    const resources r = c.cost();
    EXPECT_EQ(r.ffs, 1u + 4u + 8u);
    EXPECT_EQ(r.luts, 1u + 4u + 8u);
}

TEST(component, reset_recurses_over_children)
{
    composite c;
    c.a_.step();
    c.b_.step();
    c.reset();
    EXPECT_EQ(c.a_.value(), 0u);
    EXPECT_EQ(c.b_.value(), 0u);
}

TEST(component, audit_lists_every_child)
{
    composite c;
    const std::string audit = resource_audit(c);
    EXPECT_NE(audit.find("composite"), std::string::npos);
    EXPECT_NE(audit.find("a:"), std::string::npos);
    EXPECT_NE(audit.find("b:"), std::string::npos);
}

} // namespace
