// Runtime for the vendored GoogleTest shim: test registry, failure
// recording, the run loop and main().  See gtest/gtest.h in this directory
// for the API surface and when the shim is selected.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <exception>

namespace otf_gtest {

TestResult& current_result()
{
    static TestResult result;
    return result;
}

std::vector<RegisteredTest>& registry()
{
    static std::vector<RegisteredTest> tests;
    return tests;
}

int register_test(const char* suite, const char* name,
                  std::function<void*()> make)
{
    registry().push_back({suite, name, std::move(make)});
    return 0;
}

namespace {

// Runs one test with gtest's sequencing: SetUp, then the body unless SetUp
// failed fatally or skipped, then TearDown regardless.
void run_one(const RegisteredTest& t)
{
    auto* test = static_cast<::testing::Test*>(t.make());
    try {
        test->SetUp();
        if (!current_result().fatal && !current_result().skipped) {
            test->TestBody();
        }
        test->TearDown();
    } catch (const std::exception& e) {
        ++current_result().failures;
        std::printf("  uncaught exception: %s\n", e.what());
    } catch (...) {
        ++current_result().failures;
        std::printf("  uncaught non-standard exception\n");
    }
    delete test;
}

} // namespace

int run_all_tests()
{
    const auto& tests = registry();
    std::printf("[==========] Running %zu tests (otf gtest shim).\n",
                tests.size());
    std::vector<std::string> failed;
    std::size_t skipped = 0;
    for (const auto& t : tests) {
        const std::string full = t.suite + "." + t.name;
        std::printf("[ RUN      ] %s\n", full.c_str());
        current_result() = TestResult{};
        const auto start = std::chrono::steady_clock::now();
        run_one(t);
        const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
        if (current_result().failures > 0) {
            failed.push_back(full);
            std::printf("[  FAILED  ] %s (%lld ms)\n", full.c_str(),
                        static_cast<long long>(ms));
        } else if (current_result().skipped) {
            ++skipped;
            std::printf("[  SKIPPED ] %s (%lld ms)\n", full.c_str(),
                        static_cast<long long>(ms));
        } else {
            std::printf("[       OK ] %s (%lld ms)\n", full.c_str(),
                        static_cast<long long>(ms));
        }
    }
    std::printf("[==========] %zu tests ran.\n", tests.size());
    std::printf("[  PASSED  ] %zu tests.\n",
                tests.size() - failed.size() - skipped);
    if (skipped > 0) {
        std::printf("[  SKIPPED ] %zu tests.\n", skipped);
    }
    if (!failed.empty()) {
        std::printf("[  FAILED  ] %zu tests, listed below:\n", failed.size());
        for (const auto& name : failed) {
            std::printf("[  FAILED  ] %s\n", name.c_str());
        }
        return 1;
    }
    return 0;
}

} // namespace otf_gtest

namespace testing::internal {

void AssertHelper::operator=(const Message& message) const
{
    auto& result = ::otf_gtest::current_result();
    if (kind_ == FailKind::skip) {
        result.skipped = true;
        const std::string user = message.str();
        if (!user.empty()) {
            std::printf("  skipped: %s\n", user.c_str());
        }
        return;
    }
    ++result.failures;
    if (kind_ == FailKind::fatal) {
        result.fatal = true;
    }
    std::printf("%s:%d: Failure\n%s\n", file_, line_, summary_.c_str());
    const std::string user = message.str();
    if (!user.empty()) {
        std::printf("%s\n", user.c_str());
    }
}

} // namespace testing::internal

int main(int argc, char** argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return ::otf_gtest::run_all_tests();
}
