// Canonical fixed seeds for the stochastic test fixtures.
//
// Every entropy-source model in src/trng takes an explicit 64-bit seed and
// xoshiro256** expands it with splitmix64, so a test that names its seed is
// bit-for-bit reproducible on every platform.  The type-1-rate thresholds
// in test_core_monitor.cpp are tuned against the exact streams these seeds
// produce; change a seed only together with the thresholds that depend on
// it.
//
// test_trng_sources.cpp pins kCanonicalSeed's first xoshiro outputs as a
// golden anchor, so any change to the generator or its seeding (and any
// hidden global state) fails loudly instead of flaking statistically.
#pragma once

#include <cstdint>

namespace otf::test {

/// The repository-wide canonical seed for new deterministic fixtures.
inline constexpr std::uint64_t kCanonicalSeed = 0x0f1e2d3c4b5a6978ULL;

/// Derive a distinct, still-deterministic seed for the i-th fixture of a
/// test (two sources in one test must never share a stream).
inline constexpr std::uint64_t fixture_seed(std::uint64_t index)
{
    return kCanonicalSeed + 0x9e3779b97f4a7c15ULL * (index + 1);
}

} // namespace otf::test
