// Minimal GoogleTest-compatible shim, used only when neither a system
// GoogleTest nor FetchContent is available (offline builds).  It implements
// the subset of the gtest API this repository's tests use:
//
//   TEST / TEST_F / TEST_P + INSTANTIATE_TEST_SUITE_P
//   testing::Values / ValuesIn / Range / Combine, TestParamInfo name
//   generators
//   EXPECT_/ASSERT_ comparison macros, EXPECT_NEAR / EXPECT_DOUBLE_EQ,
//   EXPECT_THROW / EXPECT_NO_THROW, GTEST_SKIP, << message streaming
//
// Semantics follow gtest: EXPECT_* records a failure and continues,
// ASSERT_* returns from the enclosing function, GTEST_SKIP() in SetUp or a
// test body marks the test skipped.  Arguments are evaluated exactly once.
//
// Not implemented: death tests, typed tests, matchers, --gtest_* flags.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace otf_gtest {

// ---------------------------------------------------------------------------
// Per-test result state and the global registry (defined in gtest_shim.cpp).
// ---------------------------------------------------------------------------
struct TestResult {
    int failures = 0;
    bool fatal = false;
    bool skipped = false;
};

TestResult& current_result();

struct RegisteredTest {
    std::string suite;
    std::string name;
    // Factory only: construction, SetUp/TestBody/TearDown sequencing and
    // exception handling live in the runner (gtest_shim.cpp).
    std::function<void*()> make; // returns a testing::Test*
};

std::vector<RegisteredTest>& registry();
int register_test(const char* suite, const char* name,
                  std::function<void*()> make);
int run_all_tests();

// ---------------------------------------------------------------------------
// Value printing: stream when the type supports it, placeholder otherwise.
// ---------------------------------------------------------------------------
template <class T, class = void>
struct is_streamable : std::false_type {};
template <class T>
struct is_streamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                             << std::declval<const T&>())>>
    : std::true_type {};

template <class T>
std::string print_value(const T& v)
{
    if constexpr (std::is_same_v<T, bool>) {
        return v ? "true" : "false";
    } else if constexpr (is_streamable<T>::value) {
        std::ostringstream os;
        os << v;
        return os.str();
    } else {
        return "<value of unprintable type>";
    }
}

// ---------------------------------------------------------------------------
// Comparison helpers.  Each returns ok + a gtest-style message; the macros
// evaluate their operands exactly once by passing them through here.
// ---------------------------------------------------------------------------
struct CmpResult {
    bool ok;
    std::string message;
};

template <class A, class B>
CmpResult cmp_eq(const char* as, const char* bs, const A& a, const B& b)
{
    if (a == b) {
        return {true, {}};
    }
    return {false, std::string("Expected equality of these values:\n  ") + as
                       + "\n    Which is: " + print_value(a) + "\n  " + bs
                       + "\n    Which is: " + print_value(b)};
}

#define OTF_GTEST_DEFINE_CMP_(fn, op)                                        \
    template <class A, class B>                                              \
    CmpResult fn(const char* as, const char* bs, const A& a, const B& b)     \
    {                                                                        \
        if (a op b) {                                                        \
            return {true, {}};                                               \
        }                                                                    \
        return {false, std::string("Expected: (") + as + ") " #op " (" + bs  \
                           + "), actual: " + print_value(a) + " vs "         \
                           + print_value(b)};                                \
    }

OTF_GTEST_DEFINE_CMP_(cmp_ne, !=)
OTF_GTEST_DEFINE_CMP_(cmp_lt, <)
OTF_GTEST_DEFINE_CMP_(cmp_le, <=)
OTF_GTEST_DEFINE_CMP_(cmp_gt, >)
OTF_GTEST_DEFINE_CMP_(cmp_ge, >=)
#undef OTF_GTEST_DEFINE_CMP_

inline CmpResult check_bool(const char* expr, bool value, bool expected)
{
    if (value == expected) {
        return {true, {}};
    }
    return {false, std::string("Value of: ") + expr + "\n  Actual: "
                       + (value ? "true" : "false")
                       + "\nExpected: " + (expected ? "true" : "false")};
}

inline CmpResult cmp_near(const char* as, const char* bs, double a, double b,
                          double tol)
{
    const double diff = std::fabs(a - b);
    if (diff <= tol) {
        return {true, {}};
    }
    return {false, std::string("The difference between ") + as + " and " + bs
                       + " is " + print_value(diff) + ", which exceeds "
                       + print_value(tol) + ", where\n" + as
                       + " evaluates to " + print_value(a) + ",\n" + bs
                       + " evaluates to " + print_value(b)};
}

inline CmpResult cmp_streq(const char* as, const char* bs, const char* a,
                           const char* b)
{
    const bool ok = (a == nullptr || b == nullptr)
        ? a == b
        : std::strcmp(a, b) == 0;
    if (ok) {
        return {true, {}};
    }
    // Built with += rather than operator+ on a temporary: GCC 12 at -O3
    // flags the inlined insert() path with a spurious -Werror=restrict.
    const auto quote = [](const char* s) {
        if (s == nullptr) {
            return std::string("NULL");
        }
        std::string quoted = "\"";
        quoted += s;
        quoted += '"';
        return quoted;
    };
    return {false, std::string("Expected equality of these values:\n  ") + as
                       + "\n    Which is: " + quote(a) + "\n  " + bs
                       + "\n    Which is: " + quote(b)};
}

// 4-ULP comparison, mirroring gtest's AlmostEquals for doubles.
inline bool almost_equal(double a, double b)
{
    if (std::isnan(a) || std::isnan(b)) {
        return false;
    }
    if (a == b) {
        return true;
    }
    std::int64_t ia = 0;
    std::int64_t ib = 0;
    std::memcpy(&ia, &a, sizeof a);
    std::memcpy(&ib, &b, sizeof b);
    // Map the sign-magnitude representation onto a monotonic biased scale.
    const auto bias = [](std::int64_t i) {
        return i < 0 ? std::int64_t(0x8000000000000000ULL) - i : i;
    };
    const std::int64_t d = bias(ia) - bias(ib);
    return d >= -4 && d <= 4;
}

inline CmpResult cmp_double_eq(const char* as, const char* bs, double a,
                               double b)
{
    if (almost_equal(a, b)) {
        return {true, {}};
    }
    return {false, std::string("Expected equality (within 4 ULPs) of:\n  ")
                       + as + "\n    Which is: " + print_value(a) + "\n  "
                       + bs + "\n    Which is: " + print_value(b)};
}

} // namespace otf_gtest

namespace testing {

// ---------------------------------------------------------------------------
// Message streaming + failure recording.
// ---------------------------------------------------------------------------
class Message {
public:
    Message() = default;
    template <class T>
    Message& operator<<(const T& value)
    {
        ss_ << value;
        return *this;
    }
    std::string str() const { return ss_.str(); }

private:
    std::ostringstream ss_;
};

namespace internal {

enum class FailKind { nonfatal, fatal, skip };

class AssertHelper {
public:
    AssertHelper(FailKind kind, const char* file, int line,
                 std::string summary)
        : kind_(kind), file_(file), line_(line), summary_(std::move(summary))
    {
    }

    // The streamed user message arrives as `helper = Message() << ...`.
    void operator=(const Message& message) const;

private:
    FailKind kind_;
    const char* file_;
    int line_;
    std::string summary_;
};

} // namespace internal

// ---------------------------------------------------------------------------
// Test base classes.
// ---------------------------------------------------------------------------
class Test {
public:
    virtual ~Test() = default;
    virtual void TestBody() = 0;
    virtual void SetUp() {}
    virtual void TearDown() {}
};

template <class T>
class WithParamInterface {
public:
    using ParamType = T;
    static const T& GetParam() { return *current_param(); }
    static const T*& current_param()
    {
        static const T* param = nullptr;
        return param;
    }
};

template <class T>
class TestWithParam : public Test, public WithParamInterface<T> {};

template <class T>
struct TestParamInfo {
    T param;
    std::size_t index;
};

// ---------------------------------------------------------------------------
// Parameter generators.  Each generator materializes into a vector of the
// fixture's ParamType at instantiation time, so heterogeneous literals
// (e.g. const char* for a std::string parameter) convert naturally.
// ---------------------------------------------------------------------------
template <class... Ts>
struct ValueList {
    std::tuple<Ts...> values;
    template <class P>
    std::vector<P> materialize() const
    {
        std::vector<P> out;
        out.reserve(sizeof...(Ts));
        std::apply([&](const auto&... v) { (out.push_back(P(v)), ...); },
                   values);
        return out;
    }
};

template <class... Ts>
ValueList<std::decay_t<Ts>...> Values(Ts&&... values)
{
    return {std::tuple<std::decay_t<Ts>...>(std::forward<Ts>(values)...)};
}

template <class T>
struct ValuesInGen {
    std::vector<T> values;
    template <class P>
    std::vector<P> materialize() const
    {
        return std::vector<P>(values.begin(), values.end());
    }
};

template <class Container>
ValuesInGen<typename Container::value_type> ValuesIn(const Container& c)
{
    return {std::vector<typename Container::value_type>(c.begin(), c.end())};
}

template <class T>
struct RangeGen {
    T first;
    T last;
    T step;
    template <class P>
    std::vector<P> materialize() const
    {
        std::vector<P> out;
        for (T v = first; v < last; v = static_cast<T>(v + step)) {
            out.push_back(P(v));
        }
        return out;
    }
};

template <class T>
RangeGen<T> Range(T first, T last)
{
    return {first, last, T(1)};
}

template <class T>
RangeGen<T> Range(T first, T last, T step)
{
    return {first, last, step};
}

template <class... Gens>
struct CombineGen {
    std::tuple<Gens...> gens;

    template <class P, std::size_t I, class Axes>
    void cartesian(const Axes& axes, P& cur, std::vector<P>& out) const
    {
        if constexpr (I == std::tuple_size_v<P>) {
            out.push_back(cur);
        } else {
            for (const auto& v : std::get<I>(axes)) {
                std::get<I>(cur) = v;
                cartesian<P, I + 1>(axes, cur, out);
            }
        }
    }

    template <class P>
    std::vector<P> materialize() const
    {
        return materialize_impl<P>(std::index_sequence_for<Gens...>{});
    }

    template <class P, std::size_t... Is>
    std::vector<P> materialize_impl(std::index_sequence<Is...>) const
    {
        auto axes = std::make_tuple(
            std::get<Is>(gens)
                .template materialize<std::tuple_element_t<Is, P>>()...);
        std::vector<P> out;
        P cur{};
        cartesian<P, 0>(axes, cur, out);
        return out;
    }
};

template <class... Gens>
CombineGen<std::decay_t<Gens>...> Combine(Gens&&... gens)
{
    return {std::tuple<std::decay_t<Gens>...>(std::forward<Gens>(gens)...)};
}

// ---------------------------------------------------------------------------
// TEST_P registration + instantiation.
// ---------------------------------------------------------------------------
namespace internal {

template <class Fixture>
struct ParamTestRegistry {
    struct Pattern {
        std::string name;
        std::function<::testing::Test*()> factory;
    };
    static std::vector<Pattern>& patterns()
    {
        static std::vector<Pattern> p;
        return p;
    }
    static int add(const char* name, std::function<::testing::Test*()> f)
    {
        patterns().push_back({name, std::move(f)});
        return 0;
    }
};

} // namespace internal

template <class Fixture, class Gen, class NameGen>
int InstantiateParamSuite(const char* prefix, const char* suite,
                          const Gen& gen, NameGen name_gen)
{
    using P = typename Fixture::ParamType;
    auto params =
        std::make_shared<std::vector<P>>(gen.template materialize<P>());
    const std::string full_suite = std::string(prefix) + "/" + suite;
    for (const auto& pattern :
         internal::ParamTestRegistry<Fixture>::patterns()) {
        for (std::size_t i = 0; i < params->size(); ++i) {
            const std::string name =
                pattern.name + "/"
                + name_gen(TestParamInfo<P>{(*params)[i], i});
            auto factory = pattern.factory;
            ::otf_gtest::register_test(
                full_suite.c_str(), name.c_str(),
                [factory, params, i]() -> void* {
                    WithParamInterface<P>::current_param() =
                        &(*params)[i];
                    return factory();
                });
        }
    }
    return 0;
}

template <class Fixture, class Gen>
int InstantiateParamSuite(const char* prefix, const char* suite,
                          const Gen& gen)
{
    using P = typename Fixture::ParamType;
    return InstantiateParamSuite<Fixture>(
        prefix, suite, gen,
        [](const TestParamInfo<P>& info) { return std::to_string(info.index); });
}

inline void InitGoogleTest(int* = nullptr, char** = nullptr) {}

} // namespace testing

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------
#define GTEST_TEST_CLASS_NAME_(suite, name) suite##_##name##_Test

#define OTF_GTEST_TEST_(suite, name, base)                                   \
    class GTEST_TEST_CLASS_NAME_(suite, name) : public base {                \
    public:                                                                  \
        void TestBody() override;                                            \
    };                                                                       \
    [[maybe_unused]] static const int otf_gtest_reg_##suite##_##name =       \
        ::otf_gtest::register_test(#suite, #name, []() -> void* {            \
            return static_cast<::testing::Test*>(                            \
                new GTEST_TEST_CLASS_NAME_(suite, name));                    \
        });                                                                  \
    void GTEST_TEST_CLASS_NAME_(suite, name)::TestBody()

#define TEST(suite, name) OTF_GTEST_TEST_(suite, name, ::testing::Test)
#define TEST_F(fixture, name) OTF_GTEST_TEST_(fixture, name, fixture)

#define TEST_P(fixture, name)                                                \
    class GTEST_TEST_CLASS_NAME_(fixture, name) : public fixture {           \
    public:                                                                  \
        void TestBody() override;                                            \
    };                                                                       \
    [[maybe_unused]] static const int otf_gtest_preg_##fixture##_##name =    \
        ::testing::internal::ParamTestRegistry<fixture>::add(                \
            #name, []() -> ::testing::Test* {                                \
                return new GTEST_TEST_CLASS_NAME_(fixture, name);            \
            });                                                              \
    void GTEST_TEST_CLASS_NAME_(fixture, name)::TestBody()

#define INSTANTIATE_TEST_SUITE_P(prefix, fixture, ...)                       \
    [[maybe_unused]] static const int otf_gtest_inst_##prefix##_##fixture =  \
        ::testing::InstantiateParamSuite<fixture>(#prefix, #fixture,         \
                                                  __VA_ARGS__)

// Failure emission.  The trailing `= ::testing::Message()` lets user code
// append a streamed message: EXPECT_EQ(a, b) << "context".
#define OTF_GTEST_NONFATAL_(summary)                                         \
    ::testing::internal::AssertHelper(                                       \
        ::testing::internal::FailKind::nonfatal, __FILE__, __LINE__,         \
        (summary)) = ::testing::Message()
#define OTF_GTEST_FATAL_(summary)                                            \
    return ::testing::internal::AssertHelper(                                \
               ::testing::internal::FailKind::fatal, __FILE__, __LINE__,     \
               (summary)) = ::testing::Message()

#define GTEST_SKIP()                                                         \
    return ::testing::internal::AssertHelper(                                \
               ::testing::internal::FailKind::skip, __FILE__, __LINE__,      \
               "Skipped") = ::testing::Message()

// Assertion core: evaluate via a CmpResult-returning expression, then fail
// through FAILMODE on mismatch.  The switch guard keeps dangling-else safe.
#define OTF_GTEST_AR_(expr, FAILMODE)                                        \
    switch (0)                                                               \
    case 0:                                                                  \
    default:                                                                 \
        if (::otf_gtest::CmpResult otf_gtest_ar = (expr); otf_gtest_ar.ok)   \
            ;                                                                \
        else                                                                 \
            FAILMODE(otf_gtest_ar.message)

#define EXPECT_EQ(a, b) OTF_GTEST_AR_(::otf_gtest::cmp_eq(#a, #b, (a), (b)), OTF_GTEST_NONFATAL_)
#define EXPECT_NE(a, b) OTF_GTEST_AR_(::otf_gtest::cmp_ne(#a, #b, (a), (b)), OTF_GTEST_NONFATAL_)
#define EXPECT_LT(a, b) OTF_GTEST_AR_(::otf_gtest::cmp_lt(#a, #b, (a), (b)), OTF_GTEST_NONFATAL_)
#define EXPECT_LE(a, b) OTF_GTEST_AR_(::otf_gtest::cmp_le(#a, #b, (a), (b)), OTF_GTEST_NONFATAL_)
#define EXPECT_GT(a, b) OTF_GTEST_AR_(::otf_gtest::cmp_gt(#a, #b, (a), (b)), OTF_GTEST_NONFATAL_)
#define EXPECT_GE(a, b) OTF_GTEST_AR_(::otf_gtest::cmp_ge(#a, #b, (a), (b)), OTF_GTEST_NONFATAL_)
#define ASSERT_EQ(a, b) OTF_GTEST_AR_(::otf_gtest::cmp_eq(#a, #b, (a), (b)), OTF_GTEST_FATAL_)
#define ASSERT_NE(a, b) OTF_GTEST_AR_(::otf_gtest::cmp_ne(#a, #b, (a), (b)), OTF_GTEST_FATAL_)
#define ASSERT_LT(a, b) OTF_GTEST_AR_(::otf_gtest::cmp_lt(#a, #b, (a), (b)), OTF_GTEST_FATAL_)
#define ASSERT_LE(a, b) OTF_GTEST_AR_(::otf_gtest::cmp_le(#a, #b, (a), (b)), OTF_GTEST_FATAL_)
#define ASSERT_GT(a, b) OTF_GTEST_AR_(::otf_gtest::cmp_gt(#a, #b, (a), (b)), OTF_GTEST_FATAL_)
#define ASSERT_GE(a, b) OTF_GTEST_AR_(::otf_gtest::cmp_ge(#a, #b, (a), (b)), OTF_GTEST_FATAL_)

#define EXPECT_TRUE(c) OTF_GTEST_AR_(::otf_gtest::check_bool(#c, static_cast<bool>(c), true), OTF_GTEST_NONFATAL_)
#define EXPECT_FALSE(c) OTF_GTEST_AR_(::otf_gtest::check_bool(#c, static_cast<bool>(c), false), OTF_GTEST_NONFATAL_)
#define ASSERT_TRUE(c) OTF_GTEST_AR_(::otf_gtest::check_bool(#c, static_cast<bool>(c), true), OTF_GTEST_FATAL_)
#define ASSERT_FALSE(c) OTF_GTEST_AR_(::otf_gtest::check_bool(#c, static_cast<bool>(c), false), OTF_GTEST_FATAL_)

#define EXPECT_NEAR(a, b, tol) OTF_GTEST_AR_(::otf_gtest::cmp_near(#a, #b, (a), (b), (tol)), OTF_GTEST_NONFATAL_)
#define ASSERT_NEAR(a, b, tol) OTF_GTEST_AR_(::otf_gtest::cmp_near(#a, #b, (a), (b), (tol)), OTF_GTEST_FATAL_)
#define EXPECT_DOUBLE_EQ(a, b) OTF_GTEST_AR_(::otf_gtest::cmp_double_eq(#a, #b, (a), (b)), OTF_GTEST_NONFATAL_)
#define ASSERT_DOUBLE_EQ(a, b) OTF_GTEST_AR_(::otf_gtest::cmp_double_eq(#a, #b, (a), (b)), OTF_GTEST_FATAL_)

#define EXPECT_STREQ(a, b) OTF_GTEST_AR_(::otf_gtest::cmp_streq(#a, #b, (a), (b)), OTF_GTEST_NONFATAL_)
#define ASSERT_STREQ(a, b) OTF_GTEST_AR_(::otf_gtest::cmp_streq(#a, #b, (a), (b)), OTF_GTEST_FATAL_)

#define OTF_GTEST_THROW_RESULT_(statement, expected)                         \
    [&]() -> ::otf_gtest::CmpResult {                                        \
        try {                                                                \
            statement;                                                       \
        } catch (const expected&) {                                          \
            return {true, {}};                                               \
        } catch (...) {                                                      \
            return {false,                                                   \
                    "Expected: " #statement " throws " #expected             \
                    ".\n  Actual: it throws a different type."};             \
        }                                                                    \
        return {false, "Expected: " #statement " throws " #expected          \
                       ".\n  Actual: it throws nothing."};                   \
    }()

#define EXPECT_THROW(statement, expected) OTF_GTEST_AR_(OTF_GTEST_THROW_RESULT_(statement, expected), OTF_GTEST_NONFATAL_)
#define ASSERT_THROW(statement, expected) OTF_GTEST_AR_(OTF_GTEST_THROW_RESULT_(statement, expected), OTF_GTEST_FATAL_)

#define OTF_GTEST_NO_THROW_RESULT_(statement)                                \
    [&]() -> ::otf_gtest::CmpResult {                                        \
        try {                                                                \
            statement;                                                       \
        } catch (...) {                                                      \
            return {false, "Expected: " #statement                           \
                           " doesn't throw.\n  Actual: it throws."};         \
        }                                                                    \
        return {true, {}};                                                   \
    }()

#define EXPECT_NO_THROW(statement) OTF_GTEST_AR_(OTF_GTEST_NO_THROW_RESULT_(statement), OTF_GTEST_NONFATAL_)
#define ASSERT_NO_THROW(statement) OTF_GTEST_AR_(OTF_GTEST_NO_THROW_RESULT_(statement), OTF_GTEST_FATAL_)

#define ADD_FAILURE() OTF_GTEST_NONFATAL_("Failure")
#define FAIL() OTF_GTEST_FATAL_("Failure")
#define SUCCEED()                                                            \
    static_cast<void>(0)

#define RUN_ALL_TESTS() ::otf_gtest::run_all_tests()
