// Differential kernel-oracle harness: the per-bit lane is the ground
// truth, and every fast lane -- word, span (under each kernel variant)
// and the bit-sliced fleet lane -- must reproduce it register-exactly.
//
// The span kernels (base/bits.hpp) are runtime-dispatched through a
// process-wide kernel_variant; this suite pins each variant (reference,
// portable, simd) against the per-bit oracle over all eight paper design
// points, seeded random streams, adversarial source models at several
// severities, and pathological inputs (all-zero, all-one, alternating,
// a single flipped bit at every word offset).  The sliced lane
// (hw::sliced_block) is pinned against 64 independent scalar engines fed
// the same per-channel streams, and core::sliced_software_pass against
// the full software_runner verdict path.
#include "base/bits.hpp"
#include "core/critical_values.hpp"
#include "core/design_config.hpp"
#include "core/fleet_monitor.hpp"
#include "core/monitor.hpp"
#include "core/sw_routines.hpp"
#include "hw/health_tests.hpp"
#include "hw/sliced_block.hpp"
#include "hw/testing_block.hpp"
#include "trng/source_model.hpp"
#include "trng/sources.hpp"
#include "trng/xoshiro.hpp"

#include "support/fixed_seed.hpp"

#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <vector>

namespace {

using namespace otf;
using core::paper_design;
using core::tier;
using test::fixture_seed;
using test::kCanonicalSeed;

// ---------------------------------------------------------------------------
// Kernel-variant sweep plumbing.  The variant is process-wide state, so
// every test restores the production default (simd) on exit.
// ---------------------------------------------------------------------------

constexpr bits::kernel_variant kAllVariants[] = {
    bits::kernel_variant::reference,
    bits::kernel_variant::portable,
    bits::kernel_variant::simd,
};

const char* variant_name(bits::kernel_variant v)
{
    switch (v) {
    case bits::kernel_variant::reference: return "reference";
    case bits::kernel_variant::portable: return "portable";
    case bits::kernel_variant::simd: return "simd";
    }
    return "?";
}

struct variant_guard {
    ~variant_guard() { bits::set_kernel_variant(bits::kernel_variant::simd); }
};

// ---------------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------------

bit_sequence random_sequence(std::uint64_t seed, std::uint64_t n)
{
    trng::ideal_source src(seed);
    return src.generate(n);
}

bit_sequence alternating_sequence(std::uint64_t n)
{
    bit_sequence seq;
    for (std::uint64_t i = 0; i < n; ++i) {
        seq.push_back((i & 1) != 0);
    }
    return seq;
}

/// Pack bits [pos, pos + len) of `seq` into a fresh LSB-first span buffer
/// (bit 0 of the buffer is seq[pos]) -- what a chunked feed_span caller
/// hands the block for each chunk.
std::vector<std::uint64_t> pack_range(const bit_sequence& seq,
                                      std::size_t pos, std::size_t len)
{
    std::vector<std::uint64_t> words((len + 63) / 64, 0);
    for (std::size_t i = 0; i < len; ++i) {
        words[i / 64] |= static_cast<std::uint64_t>(seq[pos + i] ? 1 : 0)
            << (i % 64);
    }
    return words;
}

void expect_identical_registers(const hw::testing_block& oracle,
                                const hw::testing_block& fast,
                                const std::string& context)
{
    ASSERT_EQ(oracle.registers().size(), fast.registers().size());
    for (std::size_t i = 0; i < oracle.registers().size(); ++i) {
        EXPECT_EQ(oracle.registers().read_raw(i),
                  fast.registers().read_raw(i))
            << context << ": register "
            << oracle.registers().entry(i).name;
    }
    EXPECT_EQ(oracle.bits_consumed(), fast.bits_consumed()) << context;
    EXPECT_EQ(oracle.done(), fast.done()) << context;
}

/// Run `seq` through the per-bit oracle once, then through the span lane
/// under every kernel variant, asserting register-exact state each time.
void expect_span_matches_oracle(const hw::block_config& cfg,
                                const bit_sequence& seq,
                                const std::string& context)
{
    ASSERT_EQ(seq.size(), cfg.n()) << context;
    hw::testing_block oracle(cfg);
    oracle.run(seq);
    const auto words = seq.to_words();
    variant_guard guard;
    for (const bits::kernel_variant v : kAllVariants) {
        bits::set_kernel_variant(v);
        hw::testing_block fast(cfg);
        fast.feed_span(words.data(), cfg.n());
        fast.finish();
        expect_identical_registers(
            oracle, fast, context + " [" + variant_name(v) + "]");
    }
}

// ---------------------------------------------------------------------------
// Span lane vs per-bit oracle: all eight paper design points, under every
// kernel variant, on random and pathological windows.
// ---------------------------------------------------------------------------

class kernel_oracle_designs
    : public ::testing::TestWithParam<hw::block_config> {};

TEST_P(kernel_oracle_designs, span_lane_matches_per_bit_for_every_variant)
{
    const hw::block_config cfg = GetParam();
    expect_span_matches_oracle(
        cfg, random_sequence(fixture_seed(20), cfg.n()), cfg.name + " random");
    expect_span_matches_oracle(
        cfg, bit_sequence(cfg.n(), false), cfg.name + " all-zero");
    expect_span_matches_oracle(
        cfg, bit_sequence(cfg.n(), true), cfg.name + " all-one");
    expect_span_matches_oracle(
        cfg, alternating_sequence(cfg.n()), cfg.name + " alternating");
}

INSTANTIATE_TEST_SUITE_P(
    all_paper_designs, kernel_oracle_designs,
    ::testing::ValuesIn(core::all_paper_designs()),
    [](const ::testing::TestParamInfo<hw::block_config>& info) {
        std::string name = info.param.name;
        for (char& c : name) {
            if (c == '=' || c == ' ') {
                c = '_';
            }
        }
        return name;
    });

// ---------------------------------------------------------------------------
// Adversarial streams: each of the six source models, at a mild and at
// the peak severity, through every span kernel variant.  Degraded streams
// stress exactly the kernels a healthy stream never leaves the fast path
// of (long runs, saturated popcounts, template match floods).
// ---------------------------------------------------------------------------

std::unique_ptr<trng::source_model> make_model(unsigned which,
                                               std::uint64_t seed)
{
    auto inner = std::make_unique<trng::ideal_source>(seed);
    switch (which) {
    case 0:
        return std::make_unique<trng::rtn_source>(std::move(inner), seed + 1);
    case 1:
        return std::make_unique<trng::bias_drift_source>(std::move(inner),
                                                         seed + 1);
    case 2:
        return std::make_unique<trng::lockin_source>(std::move(inner),
                                                     seed + 1);
    case 3:
        return std::make_unique<trng::fault_source>(std::move(inner),
                                                    seed + 1);
    case 4:
        return std::make_unique<trng::entropy_collapse_source>(
            std::move(inner), seed + 1);
    default:
        return std::make_unique<trng::substitution_source>(std::move(inner),
                                                           seed + 1);
    }
}

TEST(kernel_oracle, adversarial_sources_match_per_bit_at_every_severity)
{
    const hw::block_config cfg = paper_design(16, tier::high);
    for (unsigned which = 0; which < 6; ++which) {
        for (const double severity : {0.25, 1.0}) {
            auto model = make_model(which, fixture_seed(30 + which));
            model->set_severity(severity);
            const bit_sequence seq = model->generate(cfg.n());
            expect_span_matches_oracle(
                cfg, seq,
                model->name() + " severity " + std::to_string(severity));
        }
    }
}

// ---------------------------------------------------------------------------
// Single-flip sweep: a lone 1 bit at every offset of the window walks the
// flip through every bit position of every span word -- any off-by-one in
// a kernel's tail masking or word seam shows up at some offset.
// ---------------------------------------------------------------------------

TEST(kernel_oracle, single_flip_at_every_word_offset_matches_per_bit)
{
    const hw::block_config cfg = paper_design(7, tier::light);
    for (std::size_t flip = 0; flip < cfg.n(); ++flip) {
        bit_sequence seq(cfg.n(), false);
        seq.set(flip, true);
        expect_span_matches_oracle(cfg, seq,
                                   "flip at " + std::to_string(flip));
    }
}

// ---------------------------------------------------------------------------
// Chunked spans: ragged chunk lengths land every chunk seam at a
// different bit offset, exercising the kernels' unaligned entry and
// tail-word masking against the same oracle.
// ---------------------------------------------------------------------------

TEST(kernel_oracle, ragged_span_chunks_match_per_bit_for_every_variant)
{
    const hw::block_config cfg = paper_design(16, tier::high);
    const bit_sequence seq = random_sequence(fixture_seed(40), cfg.n());
    hw::testing_block oracle(cfg);
    oracle.run(seq);

    variant_guard guard;
    for (const bits::kernel_variant v : kAllVariants) {
        bits::set_kernel_variant(v);
        hw::testing_block fast(cfg);
        trng::xoshiro256ss chunk_rng(fixture_seed(41));
        std::size_t pos = 0;
        while (pos < seq.size()) {
            std::size_t take = 1 + chunk_rng.next() % 131;
            if (take > seq.size() - pos) {
                take = seq.size() - pos;
            }
            const auto chunk = pack_range(seq, pos, take);
            fast.feed_span(chunk.data(), take);
            pos += take;
        }
        fast.finish();
        expect_identical_registers(
            oracle, fast,
            std::string("ragged span [") + variant_name(v) + "]");
    }
}

// ---------------------------------------------------------------------------
// Monitor end to end: all four selectable lanes produce the same window
// report for the same packed window (a lone monitor maps sliced to span).
// ---------------------------------------------------------------------------

TEST(kernel_oracle, monitor_lanes_agree_end_to_end)
{
    const hw::block_config cfg = paper_design(16, tier::high);
    trng::ideal_source src(fixture_seed(50));
    const auto words = src.generate_words(cfg.n() / 64);

    core::monitor oracle(cfg, 0.01);
    const auto a =
        oracle.test_packed(words.data(), words.size(),
                           core::ingest_lane::per_bit);
    for (const core::ingest_lane lane :
         {core::ingest_lane::word, core::ingest_lane::span,
          core::ingest_lane::sliced}) {
        core::monitor fast(cfg, 0.01);
        const auto b = fast.test_packed(words.data(), words.size(), lane);
        EXPECT_EQ(a.software.all_pass, b.software.all_pass);
        ASSERT_EQ(a.software.verdicts.size(), b.software.verdicts.size());
        for (std::size_t i = 0; i < a.software.verdicts.size(); ++i) {
            EXPECT_EQ(a.software.verdicts[i].pass,
                      b.software.verdicts[i].pass);
            EXPECT_EQ(a.software.verdicts[i].statistic,
                      b.software.verdicts[i].statistic)
                << a.software.verdicts[i].name;
            EXPECT_EQ(a.software.verdicts[i].bound,
                      b.software.verdicts[i].bound);
        }
        EXPECT_EQ(a.sw_cycles, b.sw_cycles);
    }
}

// ---------------------------------------------------------------------------
// Bit-sliced lane vs 64 independent scalar engines.  Every channel gets
// its own stream (healthy, biased, sticky, and stuck channels mixed), the
// sliced group consumes them transposed, and every per-channel statistic
// must match the scalar engines bit for bit -- across window restarts,
// with the continuous health tests running through them.
// ---------------------------------------------------------------------------

struct scalar_channel {
    bit_sequence seq;
    hw::repetition_count_hw rct;
    hw::adaptive_proportion_hw apt;

    scalar_channel(bit_sequence s, unsigned rct_cutoff, unsigned apt_log2,
                   unsigned apt_cutoff)
        : seq(std::move(s)), rct(rct_cutoff), apt(apt_log2, apt_cutoff)
    {
    }
};

bit_sequence channel_stream(unsigned channel, std::uint64_t nbits)
{
    const std::uint64_t seed = fixture_seed(60 + channel);
    switch (channel % 5) {
    case 0:
        return trng::ideal_source(seed).generate(nbits);
    case 1:
        return trng::biased_source(seed, 0.3).generate(nbits);
    case 2:
        // Sticky: mean run ~33 bits, far beyond the RCT cutoff of 21.
        return trng::markov_source(seed, 0.97).generate(nbits);
    case 3:
        return trng::biased_source(seed, 0.85).generate(nbits);
    default:
        // Stuck-at-one: trips the RCT and saturates the APT count.
        return bit_sequence(nbits, true);
    }
}

TEST(kernel_oracle, sliced_block_matches_scalar_engines_across_windows)
{
    constexpr unsigned lanes = hw::sliced_block::lanes;
    constexpr std::uint64_t window = 1024;
    constexpr std::uint64_t nwindows = 3;
    constexpr std::uint64_t nbits = window * nwindows;
    constexpr unsigned rct_cutoff = 21;
    constexpr unsigned apt_log2 = 10;
    constexpr unsigned apt_cutoff = 700;

    hw::sliced_config scfg;
    scfg.n = window;
    scfg.rct = true;
    scfg.rct_cutoff = rct_cutoff;
    scfg.apt = true;
    scfg.apt_log2_window = apt_log2;
    scfg.apt_cutoff = apt_cutoff;
    hw::sliced_block group(scfg);

    std::vector<std::unique_ptr<scalar_channel>> channels;
    channels.reserve(lanes);
    for (unsigned c = 0; c < lanes; ++c) {
        channels.push_back(std::make_unique<scalar_channel>(
            channel_stream(c, nbits), rct_cutoff, apt_log2, apt_cutoff));
    }

    for (std::uint64_t w = 0; w < nwindows; ++w) {
        if (w != 0) {
            group.restart();
        }
        // Sliced lane: 64-bit channel-major chunks, transposed inside.
        for (std::uint64_t k = 0; k < window / 64; ++k) {
            std::uint64_t chunk[lanes];
            for (unsigned c = 0; c < lanes; ++c) {
                const auto words = pack_range(channels[c]->seq,
                                              w * window + k * 64, 64);
                chunk[c] = words[0];
            }
            group.feed_words(chunk);
        }
        // Scalar lane: one engine pair per channel plus naive per-window
        // frequency/runs references.
        for (unsigned c = 0; c < lanes; ++c) {
            std::uint64_t ones = 0;
            std::uint64_t runs = 0;
            bool prev = false;
            for (std::uint64_t i = 0; i < window; ++i) {
                const std::uint64_t global = w * window + i;
                const bool bit = channels[c]->seq[global];
                channels[c]->rct.consume(bit, global);
                channels[c]->apt.consume(bit, global);
                ones += bit ? 1 : 0;
                if (i == 0 || bit != prev) {
                    ++runs;
                }
                prev = bit;
            }
            const std::string ctx =
                "channel " + std::to_string(c) + " window "
                + std::to_string(w);
            EXPECT_EQ(group.ones(c), ones) << ctx;
            EXPECT_EQ(group.s_final(c),
                      2 * static_cast<std::int64_t>(ones)
                          - static_cast<std::int64_t>(window))
                << ctx;
            EXPECT_EQ(group.n_runs(c), runs) << ctx;
            EXPECT_EQ(group.rct_alarm(c), channels[c]->rct.alarm()) << ctx;
            EXPECT_EQ(group.rct_current_run(c),
                      channels[c]->rct.current_run())
                << ctx;
            EXPECT_EQ(group.rct_longest_run(c),
                      channels[c]->rct.longest_run())
                << ctx;
            EXPECT_EQ(group.apt_alarm(c), channels[c]->apt.alarm()) << ctx;
            EXPECT_EQ(group.apt_current_count(c),
                      channels[c]->apt.current_count())
                << ctx;
        }
        EXPECT_EQ(group.window_bits(), window);
        EXPECT_EQ(group.bits_consumed(), (w + 1) * window);
    }
    // The mixed channel set must actually exercise both alarm paths.
    EXPECT_TRUE(group.rct_alarm(2));  // sticky markov channel
    EXPECT_TRUE(group.apt_alarm(4));  // stuck-at-one channel
    EXPECT_FALSE(group.rct_alarm(0)); // healthy channel stays quiet
    EXPECT_FALSE(group.apt_alarm(0));
}

TEST(kernel_oracle, sliced_block_validates_configuration_and_overruns)
{
    hw::sliced_config bad;
    bad.n = 100; // not a multiple of 64
    EXPECT_THROW(hw::sliced_block{bad}, std::invalid_argument);
    bad.n = 0;
    EXPECT_THROW(hw::sliced_block{bad}, std::invalid_argument);
    bad.n = 128;
    bad.rct = true;
    bad.rct_cutoff = 1;
    EXPECT_THROW(hw::sliced_block{bad}, std::invalid_argument);
    bad.rct_cutoff = 21;
    bad.apt = true;
    bad.apt_log2_window = 5; // below the 64-step transposed chunk
    EXPECT_THROW(hw::sliced_block{bad}, std::invalid_argument);
    bad.apt_log2_window = 17;
    EXPECT_THROW(hw::sliced_block{bad}, std::invalid_argument);
    bad.apt_log2_window = 10;

    hw::sliced_block group({.n = 128});
    const std::uint64_t zeros[hw::sliced_block::lanes] = {};
    group.feed_words(zeros);
    group.feed_words(zeros);
    EXPECT_THROW(group.step(0), std::logic_error);
    EXPECT_THROW(group.feed_words(zeros), std::logic_error);
    EXPECT_THROW(group.ones(64), std::invalid_argument);
    // Health-test accessors refuse when the test is not configured.
    EXPECT_THROW(group.rct_alarm(0), std::logic_error);
    EXPECT_THROW(group.apt_alarm(0), std::logic_error);
    group.restart();
    group.feed_words(zeros); // restart reopens the window
    EXPECT_EQ(group.window_bits(), 64u);
    EXPECT_EQ(group.bits_consumed(), 192u);
}

// ---------------------------------------------------------------------------
// sliced_software_pass vs the full software_runner: identical verdict
// vectors for the cheap always-on test set, on streams spanning clean
// passes and both failure directions.
// ---------------------------------------------------------------------------

// Without health tests configured, feed_words takes a batched path
// (per-channel popcounts rippled in as sliced multi-bit addends) instead
// of 64 per-plane step() calls.  Both must land on identical counters,
// including the run seam between consecutive chunks and across restarts.
TEST(kernel_oracle, sliced_batched_feed_matches_stepwise)
{
    constexpr unsigned lanes = hw::sliced_block::lanes;
    constexpr std::uint64_t n = 4 * 64;
    hw::sliced_block batched({.n = n});
    hw::sliced_block stepwise({.n = n});
    trng::xoshiro256ss rng(fixture_seed(0x511cedfeedULL));

    for (std::uint64_t window = 0; window < 3; ++window) {
        if (window != 0) {
            batched.restart();
            stepwise.restart();
        }
        for (std::uint64_t chunk = 0; chunk < n / 64; ++chunk) {
            std::uint64_t words[lanes];
            for (unsigned i = 0; i < lanes; ++i) {
                // Mix pathological channels in with random ones so the
                // popcount extremes (0, 64) and long runs cross chunks.
                switch (i % 4) {
                case 0: words[i] = rng.next(); break;
                case 1: words[i] = 0; break;
                case 2: words[i] = ~std::uint64_t{0}; break;
                default: words[i] = 0xaaaaaaaaaaaaaaaaULL; break;
                }
            }
            batched.feed_words(words);
            std::uint64_t planes[lanes];
            for (unsigned i = 0; i < lanes; ++i) {
                planes[i] = words[i];
            }
            bits::transpose_64x64(planes);
            for (unsigned t = 0; t < lanes; ++t) {
                stepwise.step(planes[t]);
            }
        }
        for (unsigned c = 0; c < lanes; ++c) {
            ASSERT_EQ(batched.ones(c), stepwise.ones(c)) << "channel " << c;
            ASSERT_EQ(batched.n_runs(c), stepwise.n_runs(c))
                << "channel " << c;
            ASSERT_EQ(batched.s_final(c), stepwise.s_final(c))
                << "channel " << c;
        }
        EXPECT_EQ(batched.window_bits(), stepwise.window_bits());
        EXPECT_EQ(batched.bits_consumed(), stepwise.bits_consumed());
    }
}

// feed_tile is the fused fleet's ingest call: a channel-major tile of up
// to 64 words per channel, one transpose per tile instead of one per
// 64-bit chunk.  It must be bit-exact with the equivalent sequence of
// feed_words calls -- across ragged tile widths, window restarts, run
// seams between tiles, and with the health tests configured.
TEST(kernel_oracle, feed_tile_matches_feed_words)
{
    constexpr unsigned lanes = hw::sliced_block::lanes;
    constexpr std::uint64_t n = 6 * 64;
    constexpr std::size_t stride = 8; // > words: the stride is honoured
    hw::sliced_block tiled({.n = n});
    hw::sliced_block worded({.n = n});
    trng::xoshiro256ss rng(fixture_seed(0x7117eULL));
    std::vector<std::uint64_t> tile(std::size_t{lanes} * stride);

    for (std::uint64_t window = 0; window < 3; ++window) {
        if (window != 0) {
            tiled.restart();
            worded.restart();
        }
        // 6 words per window, fed as ragged tiles of 1, 3 and 2 words:
        // run seams land both inside a tile and between tiles.
        for (const std::size_t words : {1u, 3u, 2u}) {
            for (unsigned i = 0; i < lanes; ++i) {
                for (std::size_t k = 0; k < words; ++k) {
                    std::uint64_t w = 0;
                    switch (i % 4) {
                    case 0: w = rng.next(); break;
                    case 1: w = 0; break;
                    case 2: w = ~std::uint64_t{0}; break;
                    default: w = 0xaaaaaaaaaaaaaaaaULL; break;
                    }
                    tile[std::size_t{i} * stride + k] = w;
                }
            }
            tiled.feed_tile(tile.data(), stride, words);
            std::uint64_t chunk[lanes];
            for (std::size_t k = 0; k < words; ++k) {
                for (unsigned i = 0; i < lanes; ++i) {
                    chunk[i] = tile[std::size_t{i} * stride + k];
                }
                worded.feed_words(chunk);
            }
        }
        for (unsigned c = 0; c < lanes; ++c) {
            ASSERT_EQ(tiled.ones(c), worded.ones(c)) << "channel " << c;
            ASSERT_EQ(tiled.n_runs(c), worded.n_runs(c)) << "channel " << c;
            ASSERT_EQ(tiled.s_final(c), worded.s_final(c))
                << "channel " << c;
        }
        EXPECT_EQ(tiled.window_bits(), worded.window_bits());
        EXPECT_EQ(tiled.bits_consumed(), worded.bits_consumed());
    }
}

TEST(kernel_oracle, full_width_feed_tile_matches_scalar_engines)
{
    // The fused fleet feeds whole 64x64 tiles (64 words = 4096 bits per
    // channel per tile) with the health tests live; pin the tile path
    // against per-bit scalar engines on the adversarial channel mix.
    constexpr unsigned lanes = hw::sliced_block::lanes;
    constexpr std::uint64_t window = 2 * 64 * 64;
    constexpr std::uint64_t nwindows = 2;
    constexpr unsigned rct_cutoff = 21;
    constexpr unsigned apt_log2 = 10;
    constexpr unsigned apt_cutoff = 700;

    hw::sliced_config scfg;
    scfg.n = window;
    scfg.rct = true;
    scfg.rct_cutoff = rct_cutoff;
    scfg.apt = true;
    scfg.apt_log2_window = apt_log2;
    scfg.apt_cutoff = apt_cutoff;
    hw::sliced_block group(scfg);

    std::vector<std::unique_ptr<scalar_channel>> channels;
    channels.reserve(lanes);
    for (unsigned c = 0; c < lanes; ++c) {
        channels.push_back(std::make_unique<scalar_channel>(
            channel_stream(c, window * nwindows), rct_cutoff, apt_log2,
            apt_cutoff));
    }

    constexpr std::size_t tile_words = 64;
    std::vector<std::uint64_t> tile(std::size_t{lanes} * tile_words);
    for (std::uint64_t w = 0; w < nwindows; ++w) {
        if (w != 0) {
            group.restart();
        }
        for (std::uint64_t base = 0; base < window / 64;
             base += tile_words) {
            for (unsigned c = 0; c < lanes; ++c) {
                const auto words =
                    pack_range(channels[c]->seq,
                               w * window + base * 64, tile_words * 64);
                for (std::size_t k = 0; k < tile_words; ++k) {
                    tile[std::size_t{c} * tile_words + k] = words[k];
                }
            }
            group.feed_tile(tile.data(), tile_words, tile_words);
        }
        for (unsigned c = 0; c < lanes; ++c) {
            std::uint64_t ones = 0;
            std::uint64_t runs = 0;
            bool prev = false;
            for (std::uint64_t i = 0; i < window; ++i) {
                const std::uint64_t global = w * window + i;
                const bool bit = channels[c]->seq[global];
                channels[c]->rct.consume(bit, global);
                channels[c]->apt.consume(bit, global);
                ones += bit ? 1 : 0;
                if (i == 0 || bit != prev) {
                    ++runs;
                }
                prev = bit;
            }
            const std::string ctx = "channel " + std::to_string(c)
                + " window " + std::to_string(w);
            ASSERT_EQ(group.ones(c), ones) << ctx;
            ASSERT_EQ(group.n_runs(c), runs) << ctx;
            ASSERT_EQ(group.rct_alarm(c), channels[c]->rct.alarm()) << ctx;
            ASSERT_EQ(group.rct_longest_run(c),
                      channels[c]->rct.longest_run())
                << ctx;
            ASSERT_EQ(group.apt_alarm(c), channels[c]->apt.alarm()) << ctx;
            ASSERT_EQ(group.apt_current_count(c),
                      channels[c]->apt.current_count())
                << ctx;
        }
    }
    EXPECT_TRUE(group.rct_alarm(2)) << "sticky markov channel";
    EXPECT_TRUE(group.apt_alarm(4)) << "stuck-at-one channel";
}

TEST(kernel_oracle, feed_tile_validates_width_and_overruns)
{
    hw::sliced_block group({.n = 128});
    std::vector<std::uint64_t> tile(std::size_t{hw::sliced_block::lanes}
                                    * 65,
                                    0);
    EXPECT_THROW(group.feed_tile(tile.data(), 65, 65),
                 std::invalid_argument)
        << "a tile wider than 64 words cannot be transposed in one pass";
    group.feed_tile(tile.data(), 65, 0); // zero-width tile is a no-op
    EXPECT_EQ(group.window_bits(), 0u);
    group.feed_tile(tile.data(), 65, 2); // fills the 128-bit window
    EXPECT_EQ(group.window_bits(), 128u);
    EXPECT_THROW(group.feed_tile(tile.data(), 65, 1), std::logic_error)
        << "feeding past the window must be refused";
}

TEST(kernel_oracle, sliced_software_pass_matches_software_runner)
{
    const hw::block_config cfg = core::custom_design(
        10, hw::test_set{}
                .with(hw::test_id::frequency)
                .with(hw::test_id::runs));
    const core::critical_values cv =
        core::compute_critical_values(cfg, 0.01);
    ASSERT_TRUE(core::sliced_pass_supported(cfg.tests));

    for (unsigned c = 0; c < 24; ++c) {
        const bit_sequence seq = channel_stream(c, cfg.n());
        // Scalar path: the real register map through the real runner.
        core::monitor mon(cfg, 0.01);
        const auto scalar = mon.test_sequence(seq).software;
        // Sliced path: verdicts straight from the sliced statistics.
        std::uint64_t ones = 0;
        std::uint64_t runs = 0;
        bool prev = false;
        for (std::size_t i = 0; i < seq.size(); ++i) {
            ones += seq[i] ? 1 : 0;
            if (i == 0 || seq[i] != prev) {
                ++runs;
            }
            prev = seq[i];
        }
        const auto sliced = core::sliced_software_pass(
            cfg, cv,
            2 * static_cast<std::int64_t>(ones)
                - static_cast<std::int64_t>(cfg.n()),
            runs);

        const std::string ctx = "channel " + std::to_string(c);
        EXPECT_EQ(scalar.all_pass, sliced.all_pass) << ctx;
        ASSERT_EQ(scalar.verdicts.size(), sliced.verdicts.size()) << ctx;
        for (std::size_t i = 0; i < scalar.verdicts.size(); ++i) {
            EXPECT_EQ(scalar.verdicts[i].id, sliced.verdicts[i].id) << ctx;
            EXPECT_EQ(scalar.verdicts[i].name, sliced.verdicts[i].name)
                << ctx;
            EXPECT_EQ(scalar.verdicts[i].pass, sliced.verdicts[i].pass)
                << ctx << " " << scalar.verdicts[i].name;
            EXPECT_EQ(scalar.verdicts[i].statistic,
                      sliced.verdicts[i].statistic)
                << ctx << " " << scalar.verdicts[i].name;
            EXPECT_EQ(scalar.verdicts[i].bound, sliced.verdicts[i].bound)
                << ctx << " " << scalar.verdicts[i].name;
        }
    }
}

TEST(kernel_oracle, sliced_pass_rejects_heavy_test_sets)
{
    const hw::block_config heavy = paper_design(16, tier::high);
    EXPECT_FALSE(core::sliced_pass_supported(heavy.tests));
    EXPECT_FALSE(core::sliced_pass_supported(hw::test_set{}));
    const core::critical_values cv =
        core::compute_critical_values(heavy, 0.01);
    EXPECT_THROW(core::sliced_software_pass(heavy, cv, 0, 1),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fleet: sliced lane vs span lane on an eligible design.  65 channels so
// one leftover channel rides the span lane alongside the sliced group;
// every deterministic verdict field must agree, with sw_cycles the one
// documented difference (zero for sliced-group channels).
// ---------------------------------------------------------------------------

TEST(kernel_oracle, fleet_sliced_lane_matches_span_lane_verdicts)
{
    core::fleet_config cfg;
    cfg.block = core::custom_design(
        7, hw::test_set{}
               .with(hw::test_id::frequency)
               .with(hw::test_id::runs));
    cfg.channels = hw::sliced_block::lanes + 1;
    cfg.threads = 4;
    const auto make_source = [](unsigned c)
        -> std::unique_ptr<trng::entropy_source> {
        // A few heavily biased channels guarantee failing windows, so the
        // comparison covers failures_by_test and the alarm path too.
        if (c % 8 == 3) {
            return std::make_unique<trng::biased_source>(fixture_seed(c),
                                                         0.2);
        }
        return std::make_unique<trng::ideal_source>(fixture_seed(c));
    };

    cfg.lane = core::ingest_lane::sliced;
    ASSERT_TRUE(cfg.uses_sliced_lane());
    core::fleet_monitor sliced_fleet(cfg);
    const auto sliced = sliced_fleet.run(make_source, 6);

    cfg.lane = core::ingest_lane::span;
    EXPECT_FALSE(cfg.uses_sliced_lane());
    core::fleet_monitor span_fleet(cfg);
    const auto span = span_fleet.run(make_source, 6);

    EXPECT_EQ(sliced.windows, span.windows);
    EXPECT_EQ(sliced.failures, span.failures);
    EXPECT_EQ(sliced.bits, span.bits);
    EXPECT_EQ(sliced.channels_in_alarm, span.channels_in_alarm);
    EXPECT_EQ(sliced.failures_by_test, span.failures_by_test);
    EXPECT_GT(sliced.failures, 0u) << "biased channels must fail windows";
    ASSERT_EQ(sliced.channels.size(), span.channels.size());
    for (std::size_t c = 0; c < sliced.channels.size(); ++c) {
        const auto& a = sliced.channels[c];
        const auto& b = span.channels[c];
        const std::string ctx = "channel " + std::to_string(c);
        EXPECT_EQ(a.windows, b.windows) << ctx;
        EXPECT_EQ(a.failures, b.failures) << ctx;
        EXPECT_EQ(a.alarm, b.alarm) << ctx;
        EXPECT_EQ(a.first_alarm_window, b.first_alarm_window) << ctx;
        EXPECT_EQ(a.bits, b.bits) << ctx;
        EXPECT_EQ(a.failures_by_test, b.failures_by_test) << ctx;
        if (c < hw::sliced_block::lanes) {
            // Sliced-group channels trade the cycle model for batching.
            EXPECT_EQ(a.sw_cycles, 0u) << ctx;
        } else {
            // The leftover channel rode the span lane in both fleets.
            EXPECT_EQ(a.sw_cycles, b.sw_cycles) << ctx;
        }
    }
}

TEST(kernel_oracle, sliced_lane_eligibility_rules)
{
    core::fleet_config cfg;
    cfg.block = core::custom_design(
        7, hw::test_set{}
               .with(hw::test_id::frequency)
               .with(hw::test_id::runs));
    cfg.channels = 64;
    cfg.lane = core::ingest_lane::sliced;
    EXPECT_TRUE(cfg.uses_sliced_lane());

    core::fleet_config fewer = cfg;
    fewer.channels = 63; // not even one full group
    EXPECT_FALSE(fewer.uses_sliced_lane());

    core::fleet_config heavy = cfg;
    heavy.block = paper_design(16, tier::high);
    EXPECT_FALSE(heavy.uses_sliced_lane());

    core::fleet_config supervised = cfg;
    supervised.escalated_block = paper_design(16, tier::light);
    EXPECT_FALSE(supervised.uses_sliced_lane());

    core::fleet_config word = cfg;
    word.lane = core::ingest_lane::word;
    EXPECT_FALSE(word.uses_sliced_lane());
}

} // namespace
