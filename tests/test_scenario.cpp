// Tests of the scenario subsystem: schedule shapes, runner telemetry,
// and the detection smoke over the standard adversarial library -- every
// attack scenario must alarm on a small all-tests design and the null
// scenario must hold the configured false-alarm budget.  Parameters are
// smoke-sized (4096-bit windows); the full-size sweep lives in
// bench/scenario_matrix.cpp.
#include "core/design_config.hpp"
#include "core/scenario.hpp"
#include "trng/source_model.hpp"

#include "support/fixed_seed.hpp"

#include <gtest/gtest.h>
#include <memory>
#include <stdexcept>

namespace {

using namespace otf;
using core::severity_schedule;

hw::block_config small_design()
{
    // 4096-bit all-tests design: full engine coverage, fast windows.
    return core::custom_design(
        12, hw::test_set{}
                .with(hw::test_id::frequency)
                .with(hw::test_id::block_frequency)
                .with(hw::test_id::runs)
                .with(hw::test_id::longest_run)
                .with(hw::test_id::non_overlapping_template)
                .with(hw::test_id::overlapping_template)
                .with(hw::test_id::serial)
                .with(hw::test_id::approximate_entropy)
                .with(hw::test_id::cumulative_sums));
}

core::scenario_config smoke_config()
{
    core::scenario_config cfg;
    cfg.alpha = 0.001;
    cfg.fail_threshold = 3;
    cfg.policy_window = 8;
    cfg.windows = 24;
    cfg.trials = 2;
    cfg.seed = test::kCanonicalSeed;
    return cfg;
}

TEST(severity_schedule, step_ramp_and_pulse_shapes)
{
    const severity_schedule step{severity_schedule::shape::step, 0.75, 4,
                                 0, 0};
    EXPECT_DOUBLE_EQ(step.severity_at(0), 0.0);
    EXPECT_DOUBLE_EQ(step.severity_at(3), 0.0);
    EXPECT_DOUBLE_EQ(step.severity_at(4), 0.75);
    EXPECT_DOUBLE_EQ(step.severity_at(1000), 0.75);

    const severity_schedule ramp{severity_schedule::shape::ramp, 1.0, 4, 4,
                                 0};
    EXPECT_DOUBLE_EQ(ramp.severity_at(3), 0.0);
    EXPECT_DOUBLE_EQ(ramp.severity_at(4), 0.25);
    EXPECT_DOUBLE_EQ(ramp.severity_at(6), 0.75);
    EXPECT_DOUBLE_EQ(ramp.severity_at(7), 1.0);
    EXPECT_DOUBLE_EQ(ramp.severity_at(100), 1.0);

    const severity_schedule pulse{severity_schedule::shape::pulse, 1.0, 4,
                                  0, 3};
    EXPECT_DOUBLE_EQ(pulse.severity_at(3), 0.0);
    EXPECT_DOUBLE_EQ(pulse.severity_at(4), 1.0);
    EXPECT_DOUBLE_EQ(pulse.severity_at(6), 1.0);
    EXPECT_DOUBLE_EQ(pulse.severity_at(7), 0.0);
}

TEST(severity_schedule, validation)
{
    severity_schedule bad{severity_schedule::shape::step, 1.5, 0, 0, 0};
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad = {severity_schedule::shape::ramp, 1.0, 0, 0, 0};
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad = {severity_schedule::shape::pulse, 1.0, 0, 0, 0};
    EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(scenario_runner, config_is_validated)
{
    auto cfg = smoke_config();
    cfg.windows = 0;
    EXPECT_THROW(core::scenario_runner(small_design(), cfg),
                 std::invalid_argument);
    cfg = smoke_config();
    cfg.fail_threshold = 9;
    cfg.policy_window = 8;
    EXPECT_THROW(core::scenario_runner(small_design(), cfg),
                 std::invalid_argument);
}

TEST(scenario_runner, every_attack_scenario_alarms_and_null_holds)
{
    // The detection smoke of the ISSUE acceptance: on a small all-tests
    // design every attack in the standard library must alarm in every
    // trial, with zero pre-onset false alarms, and the healthy null
    // scenario must stay silent with a pre-onset window failure rate
    // inside the policy's budget.
    const core::scenario_runner runner(small_design(), smoke_config());
    const auto reports =
        runner.run_all(core::standard_scenarios(/*onset_window=*/6,
                                                /*ramp_windows=*/4));
    ASSERT_EQ(reports.size(), 7u);
    for (const core::scenario_report& rep : reports) {
        if (rep.expect_alarm) {
            EXPECT_TRUE(rep.expectation_met())
                << rep.scenario_name << ": " << rep.trials_alarmed << "/"
                << rep.trials << " trials alarmed";
            EXPECT_TRUE(rep.detected()) << rep.scenario_name;
            EXPECT_EQ(rep.trials_false_alarmed, 0u) << rep.scenario_name;
            EXPECT_GE(rep.mean_detection_latency, 1.0) << rep.scenario_name;
            EXPECT_GE(rep.worst_detection_latency,
                      static_cast<std::uint64_t>(runner.runner_config()
                                                     .fail_threshold))
                << rep.scenario_name
                << ": a k-of-w alarm needs at least k windows";
            EXPECT_FALSE(rep.failures_by_test.empty()) << rep.scenario_name;
        } else {
            EXPECT_EQ(rep.scenario_name, "null");
            EXPECT_TRUE(rep.expectation_met())
                << "null scenario raised an alarm";
            EXPECT_EQ(rep.trials_alarmed, 0u);
            // All windows are pre-onset for the null scenario.  The
            // nominal rate is 9 tests x alpha = 0.9%; at n = 4096 the
            // integer-bound approximations are conservative (~3.5%
            // measured), so the budget is the policy's working margin,
            // not the asymptotic rate.
            EXPECT_EQ(rep.pre_onset_windows,
                      rep.windows_per_trial * rep.trials);
            EXPECT_LE(rep.false_alarm_rate(), 0.15);
        }
    }
}

TEST(scenario_runner, fast_lanes_agree_with_the_per_bit_oracle)
{
    auto cfg = smoke_config();
    cfg.windows = 10;
    cfg.trials = 1;
    auto scenarios = core::standard_scenarios(2, 2);
    const core::scenario_runner word_runner(small_design(), cfg);
    cfg.lane = core::ingest_lane::per_bit;
    const core::scenario_runner bit_runner(small_design(), cfg);
    cfg.lane = core::ingest_lane::span;
    const core::scenario_runner span_runner(small_design(), cfg);
    for (const core::scenario& sc : scenarios) {
        const auto b = bit_runner.run(sc);
        for (const core::scenario_runner* fast :
             {&word_runner, &span_runner}) {
            const auto w = fast->run(sc);
            EXPECT_EQ(w.trials_alarmed, b.trials_alarmed) << sc.name;
            EXPECT_EQ(w.pre_onset_failures, b.pre_onset_failures)
                << sc.name;
            EXPECT_EQ(w.post_onset_failures, b.post_onset_failures)
                << sc.name;
            EXPECT_EQ(w.failures_by_test, b.failures_by_test) << sc.name;
            EXPECT_EQ(w.mean_detection_latency, b.mean_detection_latency)
                << sc.name;
        }
    }
}

TEST(scenario_runner, null_model_factory_reports_scenario_name)
{
    const core::scenario_runner runner(small_design(), smoke_config());
    core::scenario broken;
    broken.name = "broken";
    broken.make_model = [](std::unique_ptr<trng::entropy_source>,
                           std::uint64_t) {
        return std::unique_ptr<trng::source_model>{};
    };
    try {
        (void)runner.run(broken);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("broken"), std::string::npos);
    }
}

TEST(scenario_runner, pulse_attack_is_still_detected)
{
    // A transient pulse long enough for the policy must latch the sticky
    // alarm even though the source recovers afterwards.
    auto cfg = smoke_config();
    const core::scenario_runner runner(small_design(), cfg);
    core::scenario sc;
    sc.name = "rtn-pulse";
    sc.make_model = [](std::unique_ptr<trng::entropy_source> inner,
                       std::uint64_t seed) {
        return std::make_unique<trng::rtn_source>(std::move(inner), seed);
    };
    sc.schedule = {severity_schedule::shape::pulse, 1.0, 6, 0, 6};
    const auto rep = runner.run(sc);
    EXPECT_TRUE(rep.expectation_met()) << rep.trials_alarmed;
    EXPECT_LE(rep.worst_detection_latency, 6u)
        << "the alarm must latch inside the pulse";
}

} // namespace
