// Tests of the population-scale fleet-of-fleets: layout-independent
// determinism (the master-seed guarantee across shard and thread counts),
// aggregation invariants between the queue-fed totals and the per-shard
// fleet reports, the false-escalation extrapolation, nearest-rank
// percentiles, queue-capacity independence and configuration validation.
#include "core/design_config.hpp"
#include "core/population.hpp"

#include "support/fixed_seed.hpp"

#include <cstdint>
#include <gtest/gtest.h>
#include <stdexcept>
#include <vector>

namespace {

using namespace otf;
using test::fixture_seed;

core::population_config small_config()
{
    core::population_config cfg;
    cfg.block = core::paper_design(7, core::tier::light);
    cfg.devices = 64;
    cfg.shards = 2;
    cfg.threads_per_shard = 2;
    cfg.windows_per_device = 6;
    cfg.master_seed = fixture_seed(11);
    // Half the population attacked: plenty of detections at this scale.
    cfg.profile.attacked_fraction = 0.5;
    cfg.keep_device_records = true;
    return cfg;
}

core::population_config supervised_config()
{
    core::population_config cfg = small_config();
    cfg.escalated_block = core::paper_design(7, core::tier::medium);
    cfg.dwell_windows = 1000; // stay escalated once triggered
    return cfg;
}

TEST(nearest_rank, picks_the_ceiling_rank)
{
    const std::vector<std::uint64_t> ten = {1, 2, 3, 4, 5,
                                            6, 7, 8, 9, 10};
    EXPECT_EQ(core::nearest_rank(ten, 0.50), 5u);
    EXPECT_EQ(core::nearest_rank(ten, 0.95), 10u);
    EXPECT_EQ(core::nearest_rank(ten, 0.99), 10u);
    EXPECT_EQ(core::nearest_rank(ten, 1.0), 10u);
    EXPECT_EQ(core::nearest_rank(ten, 0.05), 1u);
    EXPECT_EQ(core::nearest_rank({7}, 0.5), 7u);
    EXPECT_EQ(core::nearest_rank({}, 0.5), 0u) << "empty sample";
    EXPECT_THROW(core::nearest_rank(ten, 0.0), std::invalid_argument);
    EXPECT_THROW(core::nearest_rank(ten, 1.5), std::invalid_argument);
}

TEST(population, report_is_independent_of_shard_and_thread_layout)
{
    // The tentpole guarantee: the same master seed gives the same
    // population outcome -- per-device records included -- under any
    // sharding and any worker-thread count.
    struct layout {
        unsigned shards;
        unsigned threads_per_shard;
    };
    const auto run_with = [](layout l) {
        core::population_config cfg = small_config();
        cfg.shards = l.shards;
        cfg.threads_per_shard = l.threads_per_shard;
        return core::population_monitor(cfg).run();
    };
    const core::population_report baseline = run_with({1, 1});
    for (const layout l : {layout{2, 1}, layout{2, 2}, layout{4, 2},
                           layout{3, 0}}) {
        const core::population_report report = run_with(l);
        EXPECT_TRUE(baseline.same_counters(report))
            << l.shards << " shards x " << l.threads_per_shard
            << " threads changed the population report";
        ASSERT_EQ(report.device_records.size(), baseline.devices);
        for (std::uint32_t d = 0; d < baseline.devices; ++d) {
            ASSERT_EQ(baseline.device_records[d], report.device_records[d])
                << "device " << d << " at " << l.shards << "x"
                << l.threads_per_shard;
        }
    }
}

TEST(population, execution_batch_and_flush_epoch_never_change_the_report)
{
    // The work-stealing scheduler's knobs -- execution model, steal
    // batch granularity, telemetry flush epoch -- move work between
    // threads and batch queue traffic; none of them may reach the
    // report, down to the per-device records.
    const core::population_report baseline =
        core::population_monitor(small_config()).run();
    EXPECT_EQ(baseline.execution, "fused");

    std::vector<core::population_config> variants;
    {
        core::population_config cfg = small_config();
        cfg.execution = core::fleet_execution::threaded;
        variants.push_back(cfg);
    }
    for (const std::uint32_t batch : {1u, 7u, 64u}) {
        core::population_config cfg = small_config();
        cfg.steal_batch_devices = batch;
        variants.push_back(cfg);
    }
    for (const std::size_t epoch : {std::size_t{1}, std::size_t{1000}}) {
        core::population_config cfg = small_config();
        cfg.telemetry_flush_records = epoch;
        variants.push_back(cfg);
    }
    for (const core::population_config& cfg : variants) {
        const core::population_report report =
            core::population_monitor(cfg).run();
        const std::string ctx = report.execution + " batch "
            + std::to_string(report.steal_batch_devices) + " epoch "
            + std::to_string(cfg.telemetry_flush_records);
        EXPECT_TRUE(baseline.same_counters(report)) << ctx;
        ASSERT_EQ(report.device_records.size(), baseline.devices) << ctx;
        for (std::uint32_t d = 0; d < baseline.devices; ++d) {
            ASSERT_EQ(baseline.device_records[d], report.device_records[d])
                << ctx << " device " << d;
        }
    }
}

TEST(population, sliced_lane_agrees_across_executions_and_layouts)
{
    // A sliced-eligible population (>= 64 devices per shard) rides the
    // fused 64x64 tile lane; smaller shards and the threaded execution
    // degrade to the span lane.  All of it must land on the same
    // numbers.
    const auto run_with = [](unsigned shards, core::fleet_execution exe) {
        core::population_config cfg = small_config();
        // Only the cheap always-on pair rides the sliced verdict path.
        cfg.block = core::custom_design(7, hw::test_set{}
                                               .with(hw::test_id::frequency)
                                               .with(hw::test_id::runs));
        cfg.devices = 128;
        cfg.shards = shards;
        cfg.lane = core::ingest_lane::sliced;
        cfg.execution = exe;
        return core::population_monitor(cfg).run();
    };
    const core::population_report baseline =
        run_with(1, core::fleet_execution::fused);
    EXPECT_EQ(baseline.lane, "sliced")
        << "128 devices in one shard must fill two whole tile groups";
    const struct {
        unsigned shards;
        core::fleet_execution exe;
    } layouts[] = {{2, core::fleet_execution::fused},
                   {4, core::fleet_execution::fused},
                   {1, core::fleet_execution::threaded},
                   {3, core::fleet_execution::fused}};
    for (const auto& l : layouts) {
        const core::population_report report = run_with(l.shards, l.exe);
        EXPECT_TRUE(baseline.same_counters(report))
            << l.shards << " shards, " << report.execution << "/"
            << report.lane;
        for (std::uint32_t d = 0; d < baseline.devices; ++d) {
            ASSERT_EQ(baseline.device_records[d], report.device_records[d])
                << "device " << d << " at " << l.shards << " shards "
                << report.execution;
        }
    }
    EXPECT_EQ(run_with(1, core::fleet_execution::threaded).lane,
              "span (sliced fallback)")
        << "the threaded execution cannot claim the tile lane";
}

TEST(population, scheduler_telemetry_is_reported)
{
    core::population_config cfg = small_config();
    cfg.shards = 4;
    cfg.threads_per_shard = 1;
    cfg.steal_batch_devices = 2;
    cfg.telemetry_flush_records = 4;
    const core::population_report report =
        core::population_monitor(cfg).run();
    EXPECT_EQ(report.execution, "fused");
    EXPECT_FALSE(report.lane.empty());
    EXPECT_GT(report.worker_threads, 0u);
    EXPECT_LE(report.worker_threads, 4u);
    EXPECT_EQ(report.steal_batch_devices, 2u);
    EXPECT_GT(report.telemetry_flushes, 0u);
    // 64 devices in batches of 2 through 4 workers flushing every 4
    // records: at least ceil(64 / 4) = 16 epochs fleet-wide.
    EXPECT_GE(report.telemetry_flushes, 16u);
    EXPECT_EQ(report.queue_pushed, report.devices);
}

TEST(population, aggregates_match_the_shard_reports_and_device_records)
{
    const core::population_report report =
        core::population_monitor(supervised_config()).run();

    // Queue-fed totals vs the per-shard fleet reports: two independent
    // aggregation paths over the same run must agree exactly.
    std::uint64_t windows = 0;
    std::uint64_t failures = 0;
    std::uint64_t bits = 0;
    unsigned alarms = 0;
    unsigned escalations = 0;
    unsigned confirmed = 0;
    std::uint32_t shard_devices = 0;
    for (const core::population_shard_report& sr : report.shard_reports) {
        windows += sr.windows;
        failures += sr.failures;
        bits += sr.bits;
        alarms += sr.channels_in_alarm;
        escalations += sr.escalations;
        confirmed += sr.confirmed_escalations;
        shard_devices += sr.device_count;
    }
    EXPECT_EQ(report.windows, windows);
    EXPECT_EQ(report.failures, failures);
    EXPECT_EQ(report.bits, bits);
    EXPECT_EQ(report.devices_alarmed, alarms);
    EXPECT_EQ(report.escalations, escalations);
    EXPECT_EQ(report.confirmed_escalations, confirmed);
    EXPECT_EQ(shard_devices, report.devices);

    // Population-level bookkeeping.
    EXPECT_EQ(report.queue_pushed, report.devices);
    EXPECT_EQ(report.devices_attacked + report.devices_healthy,
              report.devices);
    std::uint32_t kind_devices = 0;
    for (const core::kind_summary& ks : report.by_kind) {
        kind_devices += ks.devices;
    }
    EXPECT_EQ(kind_devices, report.devices);
    EXPECT_LE(report.detected, report.attacked_alarmed);
    EXPECT_LE(report.attacked_alarmed, report.devices_attacked);
    EXPECT_EQ(report.alarm_latency.samples, report.detected);
    EXPECT_LE(report.confirmed_escalations, report.escalations);

    // And against the per-device records.
    ASSERT_EQ(report.device_records.size(), report.devices);
    std::uint64_t record_windows = 0;
    std::uint64_t healthy_windows = 0;
    std::uint32_t detected = 0;
    for (std::uint32_t d = 0; d < report.devices; ++d) {
        const core::device_record& rec = report.device_records[d];
        EXPECT_EQ(rec.device, d) << "records are indexed by device";
        record_windows += rec.windows;
        if (!rec.attacked) {
            healthy_windows += rec.windows;
        }
        detected += rec.detected() ? 1 : 0;
    }
    EXPECT_EQ(report.windows, record_windows);
    EXPECT_EQ(report.healthy_windows, healthy_windows);
    EXPECT_EQ(report.detected, detected);
}

TEST(population, attacks_are_detected_with_ordered_percentiles)
{
    const core::population_report report =
        core::population_monitor(small_config()).run();
    EXPECT_GT(report.devices_attacked, 0u);
    EXPECT_GT(report.detected, 0u)
        << "half the population attacked at n=128: something must trip";
    EXPECT_GT(report.alarm_latency.samples, 0u);
    EXPECT_GE(report.alarm_latency.p50, 1u)
        << "latency is counted inclusively from the onset window";
    EXPECT_LE(report.alarm_latency.p50, report.alarm_latency.p95);
    EXPECT_LE(report.alarm_latency.p95, report.alarm_latency.p99);
    EXPECT_LE(report.alarm_latency.p99, report.alarm_latency.worst);
    EXPECT_GT(report.alarm_latency.mean, 0.0);
    EXPECT_LE(report.alarm_latency.mean,
              static_cast<double>(report.alarm_latency.worst));
}

TEST(population, false_escalation_extrapolation_recomputes)
{
    core::population_config cfg = small_config();
    cfg.device_bits_per_second = 2.0e6;
    const core::population_report report =
        core::population_monitor(cfg).run();
    ASSERT_GT(report.healthy_windows, 0u);
    const double rate = static_cast<double>(report.healthy_alarms)
        / static_cast<double>(report.healthy_windows);
    EXPECT_DOUBLE_EQ(report.false_alarm_rate_per_window, rate);
    const double windows_per_day =
        cfg.device_bits_per_second * 86400.0 / 128.0;
    EXPECT_DOUBLE_EQ(report.false_escalations_per_device_day,
                     rate * windows_per_day);
}

TEST(population, queue_capacity_never_changes_the_report)
{
    // A minimum-size queue forces constant producer backpressure; the
    // report must not notice (capacity is timing, never data).
    const core::population_report roomy =
        core::population_monitor(small_config()).run();
    core::population_config tight_cfg = small_config();
    tight_cfg.queue_records = 1;
    const core::population_report tight =
        core::population_monitor(tight_cfg).run();
    EXPECT_EQ(tight.queue_capacity, 2u) << "the queue's two-cell floor";
    EXPECT_TRUE(roomy.same_counters(tight));
    EXPECT_EQ(roomy.shard_reports, tight.shard_reports)
        << "same layout: the per-shard breakdown must match too";
}

TEST(population, device_records_are_off_by_default)
{
    core::population_config cfg = small_config();
    cfg.keep_device_records = false;
    const core::population_report report =
        core::population_monitor(cfg).run();
    EXPECT_TRUE(report.device_records.empty());
    EXPECT_EQ(report.queue_pushed, report.devices)
        << "aggregation still flows through the queue";
}

TEST(population, shard_ranges_are_contiguous)
{
    core::population_config cfg = small_config();
    cfg.devices = 10;
    cfg.shards = 3; // 4 + 3 + 3
    const core::population_report report =
        core::population_monitor(cfg).run();
    ASSERT_EQ(report.shard_reports.size(), 3u);
    EXPECT_EQ(report.shard_reports[0].first_device, 0u);
    EXPECT_EQ(report.shard_reports[0].device_count, 4u);
    EXPECT_EQ(report.shard_reports[1].first_device, 4u);
    EXPECT_EQ(report.shard_reports[1].device_count, 3u);
    EXPECT_EQ(report.shard_reports[2].first_device, 7u);
    EXPECT_EQ(report.shard_reports[2].device_count, 3u);
    for (const core::device_record& rec : report.device_records) {
        const unsigned want_shard = rec.device < 4 ? 0
            : rec.device < 7                       ? 1
                                                   : 2;
        EXPECT_EQ(rec.shard, want_shard) << "device " << rec.device;
    }
}

TEST(population, configuration_is_validated)
{
    {
        core::population_config cfg = small_config();
        cfg.devices = 0;
        EXPECT_THROW(core::population_monitor{cfg}, std::invalid_argument);
    }
    {
        core::population_config cfg = small_config();
        cfg.shards = 0;
        EXPECT_THROW(core::population_monitor{cfg}, std::invalid_argument);
    }
    {
        core::population_config cfg = small_config();
        cfg.devices = 4;
        cfg.shards = 8;
        EXPECT_THROW(core::population_monitor{cfg}, std::invalid_argument);
    }
    {
        core::population_config cfg = small_config();
        cfg.windows_per_device = 0;
        EXPECT_THROW(core::population_monitor{cfg}, std::invalid_argument);
    }
    {
        core::population_config cfg = small_config();
        cfg.queue_records = 0;
        EXPECT_THROW(core::population_monitor{cfg}, std::invalid_argument);
    }
    {
        // Sub-word designs cannot host per-device variation: onset and
        // churn are scheduled on word boundaries.
        core::population_config cfg = small_config();
        cfg.block.log2_n = 5;
        EXPECT_THROW(core::population_monitor{cfg}, std::invalid_argument);
    }
    {
        core::population_config cfg = small_config();
        cfg.profile.attacked_fraction = 2.0;
        EXPECT_THROW(core::population_monitor{cfg}, std::invalid_argument);
    }
    {
        core::population_config cfg = small_config();
        cfg.telemetry_flush_records = 0;
        EXPECT_THROW(core::population_monitor{cfg}, std::invalid_argument);
    }
}

} // namespace
