// Tests of the SP 800-90B continuous health tests: cutoff mathematics
// (exact binomial quantiles), engine behaviour (sticky alarms, detection
// latency in bits), false-alarm control on healthy streams, and the
// health_monitor integration.
#include "core/design_config.hpp"
#include "core/monitor.hpp"
#include "core/sp80090b.hpp"
#include "hw/health_tests.hpp"
#include "trng/sources.hpp"

#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>

namespace {

using namespace otf;
using core::apt_cutoff;
using core::binomial_survival;
using core::rct_cutoff;

// ------------------------------------------------------------- cutoffs --
TEST(sp80090b_cutoffs, rct_follows_the_standard_formula)
{
    // C = 1 + ceil(20 / H) at the 2^-20 false-alarm rate.
    EXPECT_EQ(rct_cutoff(1.0), 21u);
    EXPECT_EQ(rct_cutoff(0.5), 41u);
    EXPECT_EQ(rct_cutoff(0.25), 81u);
    EXPECT_THROW(rct_cutoff(0.0), std::invalid_argument);
    EXPECT_THROW(rct_cutoff(1.5), std::invalid_argument);
}

TEST(sp80090b_cutoffs, binomial_survival_exact_small_cases)
{
    // Bin(4, 0.5): P[X >= 3] = (4 + 1) / 16.
    EXPECT_NEAR(binomial_survival(4, 0.5, 3), 5.0 / 16.0, 1e-12);
    EXPECT_NEAR(binomial_survival(4, 0.5, 0), 1.0, 1e-12);
    EXPECT_NEAR(binomial_survival(4, 0.5, 5), 0.0, 1e-12);
    // Bin(10, 0.3): P[X >= 10] = 0.3^10.
    EXPECT_NEAR(binomial_survival(10, 0.3, 10), std::pow(0.3, 10), 1e-15);
}

TEST(sp80090b_cutoffs, apt_cutoff_is_the_exact_binomial_quantile)
{
    const unsigned w = 1024;
    const unsigned c = apt_cutoff(w, 1.0);
    const double alpha = std::pow(2.0, -20.0);
    EXPECT_LE(binomial_survival(w, 0.5, c), alpha);
    EXPECT_GT(binomial_survival(w, 0.5, c - 1), alpha);
    // Mean 512, sigma 16: the 2^-20 quantile sits ~5 sigma above mean.
    EXPECT_GT(c, 560u);
    EXPECT_LT(c, 620u);
}

TEST(sp80090b_cutoffs, apt_cutoff_monotone_in_entropy_claim)
{
    // A weaker entropy claim tolerates more repetitions of the reference.
    EXPECT_GT(apt_cutoff(1024, 0.5), apt_cutoff(1024, 1.0));
}

// -------------------------------------------------------------- engines --
TEST(repetition_count, alarms_exactly_at_the_cutoff)
{
    hw::repetition_count_hw rct(5);
    std::uint64_t index = 0;
    // Four repeats: no alarm yet.
    for (int i = 0; i < 4; ++i) {
        rct.consume(true, index++);
    }
    EXPECT_FALSE(rct.alarm());
    EXPECT_EQ(rct.current_run(), 4u);
    rct.consume(true, index++);
    EXPECT_TRUE(rct.alarm()) << "fifth identical bit hits cutoff 5";
}

TEST(repetition_count, alternating_stream_never_alarms)
{
    hw::repetition_count_hw rct(5);
    for (std::uint64_t i = 0; i < 10000; ++i) {
        rct.consume((i & 1) != 0, i);
    }
    EXPECT_FALSE(rct.alarm());
    EXPECT_EQ(rct.longest_run(), 1u);
}

TEST(repetition_count, alarm_is_sticky_until_cleared)
{
    hw::repetition_count_hw rct(3);
    std::uint64_t index = 0;
    for (int i = 0; i < 3; ++i) {
        rct.consume(false, index++);
    }
    EXPECT_TRUE(rct.alarm());
    rct.consume(true, index++); // healthy bits don't clear it
    rct.consume(false, index++);
    EXPECT_TRUE(rct.alarm());
    rct.clear_alarm();
    EXPECT_FALSE(rct.alarm());
}

TEST(repetition_count, healthy_stream_false_alarm_free_at_scale)
{
    // 2^21 healthy bits against the 2^-20 cutoff: expected ~2 alarms is
    // the order of magnitude, but the sticky flag makes any single run
    // of 21 a fail; use a higher cutoff margin to assert "no alarm".
    hw::repetition_count_hw rct(core::rct_cutoff(1.0) + 10);
    trng::ideal_source src(99);
    for (std::uint64_t i = 0; i < (1u << 21); ++i) {
        rct.consume(src.next_bit(), i);
    }
    EXPECT_FALSE(rct.alarm());
}

TEST(adaptive_proportion, alarms_on_heavy_bias_within_one_window)
{
    hw::adaptive_proportion_hw apt(10, core::apt_cutoff(1024, 1.0));
    trng::biased_source src(3, 0.75);
    bool alarmed = false;
    for (std::uint64_t i = 0; i < 1024 && !alarmed; ++i) {
        apt.consume(src.next_bit(), i);
        alarmed = apt.alarm();
    }
    EXPECT_TRUE(alarmed) << "p = 0.75 crosses the ~0.58 cutoff fraction";
}

TEST(adaptive_proportion, healthy_stream_stays_quiet)
{
    hw::adaptive_proportion_hw apt(10, core::apt_cutoff(1024, 1.0));
    trng::ideal_source src(4);
    for (std::uint64_t i = 0; i < (1u << 20); ++i) {
        apt.consume(src.next_bit(), i);
    }
    EXPECT_FALSE(apt.alarm())
        << "1024 windows at 2^-20 false-alarm rate";
}

TEST(adaptive_proportion, window_restarts_reset_the_count)
{
    hw::adaptive_proportion_hw apt(4, 14); // 16-bit windows, cutoff 14
    // 13 ones then window boundary, then 13 more: no alarm because the
    // count restarts with each window.
    std::uint64_t index = 0;
    for (int w = 0; w < 2; ++w) {
        for (int i = 0; i < 13; ++i) {
            apt.consume(true, index++);
        }
        for (int i = 0; i < 3; ++i) {
            apt.consume(false, index++);
        }
    }
    EXPECT_FALSE(apt.alarm());
}

TEST(adaptive_proportion, rejects_bad_parameters)
{
    EXPECT_THROW(hw::adaptive_proportion_hw(2, 3), std::invalid_argument);
    EXPECT_THROW(hw::adaptive_proportion_hw(10, 2000),
                 std::invalid_argument);
}

TEST(health_engines, cost_a_few_slices_only)
{
    // The 90B tests are tiny -- the reason the standard can demand them
    // always-on.
    hw::repetition_count_hw rct(21);
    hw::adaptive_proportion_hw apt(10, 589);
    const auto total = rct.cost() + apt.cost();
    EXPECT_LT(rtl::estimate_spartan6(total).slices, 15u);
}

// ----------------------------------------------------------- integration --
TEST(health_monitor_90b, stuck_source_alarms_in_the_first_window)
{
    core::health_monitor hm(core::paper_design(16, core::tier::light),
                            0.01,
                            {.fail_threshold = 3,
                             .window = 8,
                             .sp800_90b = true});
    trng::stuck_source dead(true);
    (void)hm.observe(dead);
    EXPECT_TRUE(hm.alarm());
    EXPECT_FALSE(hm.policy_alarm())
        << "the window policy needs 3 failures; the RCT fired first";
    ASSERT_NE(hm.rct(), nullptr);
    EXPECT_TRUE(hm.rct()->alarm());
}

TEST(health_monitor_90b, healthy_source_quiet_over_short_horizon)
{
    // The RCT's 2^-20 cutoff means a random 21-run -- a legitimate false
    // alarm -- is expected roughly once per 2M bits, so "quiet" can only
    // be asserted over a horizon well below that (here: 6 windows =
    // 393k bits, false-alarm probability ~17%; seed 123's first megabit
    // has an 18-run at most).
    core::health_monitor hm(core::paper_design(16, core::tier::light),
                            0.01,
                            {.fail_threshold = 3,
                             .window = 8,
                             .sp800_90b = true});
    trng::ideal_source src(123);
    for (unsigned w = 0; w < 6; ++w) {
        (void)hm.observe(src);
    }
    EXPECT_FALSE(hm.alarm());
}

TEST(health_monitor_90b, disabled_by_default)
{
    core::health_monitor hm(core::paper_design(16, core::tier::light),
                            0.01, {.fail_threshold = 3, .window = 8});
    EXPECT_EQ(hm.rct(), nullptr);
    EXPECT_EQ(hm.apt(), nullptr);
}

} // namespace
