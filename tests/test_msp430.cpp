// Tests of the openMSP430-class CPU model: instruction semantics and
// flags, addressing-mode cycle costs, the hardware-multiplier peripheral,
// the program builder, and the quick-test firmware executed against live
// testing-block counters (verdicts must equal the instruction-accounting
// software routines' on the same bits).
#include "core/design_config.hpp"
#include "core/monitor.hpp"
#include "msp430/firmware.hpp"
#include "trng/sources.hpp"

#include <cstdint>
#include <gtest/gtest.h>

namespace {

using namespace otf;
using namespace otf::msp430;
using pb = program_builder;

TEST(msp430_cpu, mov_and_arithmetic)
{
    cpu core;
    program_builder a;
    a.mov(pb::imm(1000), pb::r(4));
    a.mov(pb::imm(2345), pb::r(5));
    a.add(pb::r(4), pb::r(5));
    a.halt();
    core.run(a.build());
    EXPECT_EQ(core.reg(5), 3345u);
}

TEST(msp430_cpu, add_sets_carry_on_wrap)
{
    cpu core;
    program_builder a;
    a.mov(pb::imm(0xFFFF), pb::r(4));
    a.add(pb::imm(2), pb::r(4));
    a.halt();
    core.run(a.build());
    EXPECT_EQ(core.reg(4), 1u);
    EXPECT_TRUE(core.status().carry);
}

TEST(msp430_cpu, multiword_add_with_addc)
{
    // 0x0001FFFF + 0x00010001 = 0x00030000 across two registers.
    cpu core;
    program_builder a;
    a.mov(pb::imm(0xFFFF), pb::r(4)); // lo
    a.mov(pb::imm(0x0001), pb::r(5)); // hi
    a.add(pb::imm(0x0001), pb::r(4));
    a.addc(pb::imm(0x0001), pb::r(5));
    a.halt();
    core.run(a.build());
    EXPECT_EQ(core.reg(4), 0x0000u);
    EXPECT_EQ(core.reg(5), 0x0003u);
}

TEST(msp430_cpu, cmp_sets_borrow_semantics)
{
    cpu core;
    program_builder a;
    a.mov(pb::imm(5), pb::r(4));
    a.cmp(pb::imm(7), pb::r(4)); // 5 - 7: borrow -> C = 0
    a.halt();
    core.run(a.build());
    EXPECT_FALSE(core.status().carry);
    EXPECT_FALSE(core.status().zero);

    program_builder b;
    b.mov(pb::imm(7), pb::r(4));
    b.cmp(pb::imm(7), pb::r(4));
    b.halt();
    core.run(b.build());
    EXPECT_TRUE(core.status().carry) << "equal -> no borrow";
    EXPECT_TRUE(core.status().zero);
}

TEST(msp430_cpu, subtraction_and_negation_pattern)
{
    // Two's-complement negate of 0x00012345 via XOR/ADD/ADDC.
    cpu core;
    program_builder a;
    a.mov(pb::imm(0x2345), pb::r(4));
    a.mov(pb::imm(0x0001), pb::r(5));
    a.xor_(pb::imm(0xFFFF), pb::r(4));
    a.xor_(pb::imm(0xFFFF), pb::r(5));
    a.add(pb::imm(1), pb::r(4));
    a.addc(pb::imm(0), pb::r(5));
    a.halt();
    core.run(a.build());
    // -(0x00012345) = 0xFFFEDCBB
    EXPECT_EQ(core.reg(4), 0xDCBBu);
    EXPECT_EQ(core.reg(5), 0xFFFEu);
}

TEST(msp430_cpu, shift_right_32_bit)
{
    cpu core;
    program_builder a;
    a.mov(pb::imm(0x0003), pb::r(5)); // hi
    a.mov(pb::imm(0x0002), pb::r(4)); // lo -> value 0x00030002
    a.rra(pb::r(5));
    a.rrc(pb::r(4));
    a.halt();
    core.run(a.build());
    EXPECT_EQ(core.reg(5), 0x0001u);
    EXPECT_EQ(core.reg(4), 0x8001u) << "carry from hi enters lo MSB";
}

TEST(msp430_cpu, memory_and_addressing_modes)
{
    cpu core;
    core.write_word(0x0300, 41);
    program_builder a;
    a.mov(pb::abs(0x0300), pb::r(4));
    a.add(pb::imm(1), pb::r(4));
    a.mov(pb::r(4), pb::abs(0x0302));
    a.mov(pb::imm(0x0302), pb::r(6));
    a.mov(pb::deref(6), pb::r(7));
    a.halt();
    core.run(a.build());
    EXPECT_EQ(core.read_word(0x0302), 42u);
    EXPECT_EQ(core.reg(7), 42u);
}

TEST(msp430_cpu, memory_operands_cost_more_cycles)
{
    cpu fast_core;
    program_builder fast;
    fast.mov(pb::imm(1), pb::r(4));
    fast.add(pb::r(4), pb::r(4));
    fast.halt();
    fast_core.run(fast.build());

    cpu slow_core;
    slow_core.write_word(0x0300, 1);
    program_builder slow;
    slow.mov(pb::abs(0x0300), pb::r(4));
    slow.add(pb::abs(0x0300), pb::r(4));
    slow.halt();
    slow_core.run(slow.build());

    EXPECT_GT(slow_core.cycles(), fast_core.cycles());
}

TEST(msp430_cpu, hardware_multiplier_peripheral)
{
    cpu core;
    program_builder a;
    a.mov(pb::imm(1234), pb::abs(cpu::multiplier_op1));
    a.mov(pb::imm(5678), pb::abs(cpu::multiplier_op2));
    a.mov(pb::abs(cpu::multiplier_reslo), pb::r(4));
    a.mov(pb::abs(cpu::multiplier_reshi), pb::r(5));
    a.halt();
    core.run(a.build());
    const std::uint32_t product =
        (static_cast<std::uint32_t>(core.reg(5)) << 16) | core.reg(4);
    EXPECT_EQ(product, 1234u * 5678u);
}

TEST(msp430_cpu, loop_with_conditional_jump)
{
    // Sum 1..10 with a decrement loop.
    cpu core;
    program_builder a;
    a.mov(pb::imm(10), pb::r(4));
    a.mov(pb::imm(0), pb::r(5));
    a.label("loop");
    a.add(pb::r(4), pb::r(5));
    a.sub(pb::imm(1), pb::r(4));
    a.jnz("loop");
    a.halt();
    core.run(a.build());
    EXPECT_EQ(core.reg(5), 55u);
}

TEST(msp430_cpu, runaway_program_hits_step_budget)
{
    cpu core;
    program_builder a;
    a.label("forever");
    a.jmp("forever");
    EXPECT_THROW(core.run(a.build(), 1000), std::runtime_error);
}

TEST(program_builder, rejects_undefined_and_duplicate_labels)
{
    {
        program_builder a;
        a.jmp("nowhere");
        EXPECT_THROW(a.build(), std::invalid_argument);
    }
    {
        program_builder a;
        a.label("x");
        EXPECT_THROW(a.label("x"), std::invalid_argument);
    }
}

// ---------------------------------------------------------------- firmware --
class firmware_test : public ::testing::Test {
protected:
    void SetUp() override
    {
        cfg_ = core::paper_design(16, core::tier::light);
        cv_ = core::compute_critical_values(cfg_, 0.01);
    }

    struct outcome {
        bool freq_pass;
        bool cusum_pass;
        std::uint32_t ones;
        std::uint64_t cycles;
    };

    outcome run_firmware(const bit_sequence& seq)
    {
        hw::testing_block block(cfg_);
        block.run(seq);
        const auto fw = build_quick_test_firmware(cfg_, cv_,
                                                  block.registers());
        cpu core;
        const std::uint64_t cycles =
            run_quick_tests(core, fw, block.registers());
        outcome o;
        o.freq_pass = core.read_word(fw.frequency_verdict_addr) == 1;
        o.cusum_pass = core.read_word(fw.cusum_verdict_addr) == 1;
        o.ones = (static_cast<std::uint32_t>(
                      core.read_word(fw.ones_hi_addr))
                  << 16)
            | core.read_word(fw.ones_lo_addr);
        o.cycles = cycles;
        return o;
    }

    hw::block_config cfg_;
    core::critical_values cv_;
};

TEST_F(firmware_test, verdicts_match_software_runner_across_seeds)
{
    const core::software_runner runner(cfg_, cv_);
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        trng::ideal_source src(seed * 31);
        const bit_sequence seq = src.generate(cfg_.n());

        const outcome fw = run_firmware(seq);

        hw::testing_block block(cfg_);
        block.run(seq);
        sw16::soft_cpu acc(16);
        const auto sw = runner.run(block.registers(), acc);
        EXPECT_EQ(fw.freq_pass,
                  sw.find(hw::test_id::frequency)->pass)
            << "seed " << seed;
        EXPECT_EQ(fw.cusum_pass,
                  sw.find(hw::test_id::cumulative_sums)->pass)
            << "seed " << seed;
        EXPECT_EQ(fw.ones, seq.count_ones()) << "seed " << seed;
    }
}

TEST_F(firmware_test, detects_total_failure)
{
    const outcome o = run_firmware(bit_sequence(cfg_.n(), true));
    EXPECT_FALSE(o.freq_pass);
    EXPECT_FALSE(o.cusum_pass);
    EXPECT_EQ(o.ones, cfg_.n());
}

TEST_F(firmware_test, detects_bias)
{
    trng::biased_source src(5, 0.53);
    const outcome o = run_firmware(src.generate(cfg_.n()));
    EXPECT_FALSE(o.freq_pass);
}

TEST_F(firmware_test, executes_in_tens_of_cycles)
{
    trng::ideal_source src(9);
    const outcome o = run_firmware(src.generate(cfg_.n()));
    // The quick tests are two handfuls of 32-bit operations: the measured
    // latency must sit far below the window generation time (the paper's
    // on-the-fly argument) and above a trivial handful of cycles.
    EXPECT_GT(o.cycles, 30u);
    EXPECT_LT(o.cycles, 400u);
    EXPECT_LT(o.cycles, cfg_.n());
}

TEST_F(firmware_test, rejects_designs_without_quick_tests)
{
    hw::block_config missing = cfg_;
    missing.tests = hw::test_set{}
                        .with(hw::test_id::frequency)
                        .with(hw::test_id::block_frequency)
                        .with(hw::test_id::runs)
                        .with(hw::test_id::longest_run)
                        .with(hw::test_id::cumulative_sums);
    // Valid design, but the 128-bit variant reads one-word walk values.
    hw::block_config tiny = core::paper_design(7, core::tier::light);
    const hw::testing_block tiny_block(tiny);
    EXPECT_THROW(build_quick_test_firmware(
                     tiny, core::compute_critical_values(tiny, 0.01),
                     tiny_block.registers()),
                 std::invalid_argument);
}

} // namespace
