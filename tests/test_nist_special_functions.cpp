// Numerical tests of the special functions: known values, inverse
// round-trips and domain guards.  These functions generate every
// precomputed critical value, so their accuracy underwrites the whole
// software side.
#include "nist/special_functions.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace {

using namespace otf::nist;

TEST(erfc_inv, round_trips_through_erfc)
{
    for (const double p : {1e-6, 1e-4, 0.001, 0.01, 0.1, 0.5, 1.0, 1.5,
                           1.99}) {
        EXPECT_NEAR(otf::nist::erfc(erfc_inv(p)), p, p * 1e-10) << "p=" << p;
    }
}

TEST(erfc_inv, known_values)
{
    // erfc(x) = 0.01 at x = 1.82138636...
    EXPECT_NEAR(erfc_inv(0.01), 1.8213863677, 1e-9);
    // erfc(x) = 0.001 at x = 2.32675376...
    EXPECT_NEAR(erfc_inv(0.001), 2.3267537655, 1e-9);
    EXPECT_NEAR(erfc_inv(1.0), 0.0, 1e-12);
}

TEST(erfc_inv, rejects_out_of_domain)
{
    EXPECT_THROW(erfc_inv(0.0), std::domain_error);
    EXPECT_THROW(erfc_inv(2.0), std::domain_error);
    EXPECT_THROW(erfc_inv(-1.0), std::domain_error);
}

TEST(normal_quantile, matches_tabulated_quantiles)
{
    EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
    EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-8);
    EXPECT_NEAR(normal_quantile(0.99), 2.326347874, 1e-8);
    EXPECT_NEAR(normal_quantile(0.999), 3.090232306, 1e-8);
    EXPECT_NEAR(normal_quantile(0.001), -3.090232306, 1e-8);
}

TEST(normal_quantile, round_trips_through_cdf)
{
    for (const double p : {1e-8, 1e-4, 0.3, 0.7, 0.9999, 1.0 - 1e-9}) {
        EXPECT_NEAR(normal_cdf(normal_quantile(p)), p,
                    1e-12 + p * 1e-10);
    }
}

TEST(igamc, known_values)
{
    // igamc(a, 0) = 1.
    EXPECT_DOUBLE_EQ(igamc(3.0, 0.0), 1.0);
    // igamc(1, x) = exp(-x).
    EXPECT_NEAR(igamc(1.0, 2.0), std::exp(-2.0), 1e-14);
    // igamc(1.5, 0.5) appears in the NIST block-frequency example.
    EXPECT_NEAR(igamc(1.5, 0.5), 0.801252, 1e-6);
    // igamc(0.5, x) = erfc(sqrt(x)).
    EXPECT_NEAR(igamc(0.5, 1.7), otf::nist::erfc(std::sqrt(1.7)), 1e-13);
}

TEST(igamc, complements_igam)
{
    for (const double a : {0.5, 1.0, 2.5, 8.0, 32.0}) {
        for (const double x : {0.1, 1.0, 5.0, 40.0}) {
            EXPECT_NEAR(igam(a, x) + igamc(a, x), 1.0, 1e-12)
                << "a=" << a << " x=" << x;
        }
    }
}

TEST(igamc, monotone_decreasing_in_x)
{
    double previous = 1.0;
    for (double x = 0.5; x < 30.0; x += 0.5) {
        const double q = igamc(4.0, x);
        EXPECT_LT(q, previous);
        previous = q;
    }
}

TEST(igamc_inv, round_trips)
{
    for (const double a : {0.5, 1.0, 2.0, 4.0, 8.0, 128.0}) {
        for (const double q : {0.001, 0.01, 0.3, 0.9}) {
            const double x = igamc_inv(a, q);
            EXPECT_NEAR(igamc(a, x), q, 1e-9 * (1.0 + 1.0 / q))
                << "a=" << a << " q=" << q;
        }
    }
}

TEST(chi_squared_critical, matches_tables)
{
    // Chi-squared upper critical values (standard statistical tables).
    EXPECT_NEAR(chi_squared_critical(3, 0.01), 11.3449, 1e-3);
    EXPECT_NEAR(chi_squared_critical(5, 0.01), 15.0863, 1e-3);
    EXPECT_NEAR(chi_squared_critical(8, 0.01), 20.0902, 1e-3);
    EXPECT_NEAR(chi_squared_critical(1, 0.05), 3.8415, 1e-3);
    EXPECT_NEAR(chi_squared_critical(16, 0.001), 39.2524, 1e-3);
}

TEST(chi_squared_critical, monotone_in_alpha_and_dof)
{
    EXPECT_GT(chi_squared_critical(8, 0.001), chi_squared_critical(8, 0.01));
    EXPECT_GT(chi_squared_critical(16, 0.01), chi_squared_critical(8, 0.01));
}

TEST(special_functions, domain_guards)
{
    EXPECT_THROW(igamc(0.0, 1.0), std::domain_error);
    EXPECT_THROW(igamc(1.0, -1.0), std::domain_error);
    EXPECT_THROW(igamc_inv(1.0, 0.0), std::domain_error);
    EXPECT_THROW(igamc_inv(1.0, 1.0), std::domain_error);
    EXPECT_THROW(normal_quantile(0.0), std::domain_error);
}

} // namespace
