// Whole-platform integration tests: every paper design point runs end to
// end; the monitor loop behaves across restarts; the three sequence
// lengths and all tiers produce consistent verdicts on the same source
// family.
#include "core/design_config.hpp"
#include "core/monitor.hpp"
#include "core/report.hpp"
#include "trng/sources.hpp"

#include <gtest/gtest.h>
#include <string>

namespace {

using namespace otf;

TEST(designs, all_eight_paper_variants_construct_and_validate)
{
    const auto designs = core::all_paper_designs();
    ASSERT_EQ(designs.size(), 8u);
    // Test counts per column reproduce Table III's dot matrix.
    EXPECT_EQ(designs[0].tests.count(), 5u); // 128 light
    EXPECT_EQ(designs[1].tests.count(), 7u); // 128 medium
    EXPECT_EQ(designs[2].tests.count(), 5u); // 64K light
    EXPECT_EQ(designs[3].tests.count(), 6u); // 64K medium
    EXPECT_EQ(designs[4].tests.count(), 9u); // 64K high
    EXPECT_EQ(designs[5].tests.count(), 5u); // 1M light
    EXPECT_EQ(designs[6].tests.count(), 6u); // 1M medium
    EXPECT_EQ(designs[7].tests.count(), 9u); // 1M high
}

TEST(designs, no_high_tier_at_128)
{
    EXPECT_THROW(core::paper_design(7, core::tier::high),
                 std::invalid_argument);
    EXPECT_THROW(core::paper_design(10, core::tier::light),
                 std::invalid_argument);
}

class every_design
    : public ::testing::TestWithParam<hw::block_config> {};

TEST_P(every_design, one_healthy_window_end_to_end)
{
    const hw::block_config cfg = GetParam();
    core::monitor mon(cfg, 0.01);
    trng::ideal_source src(0xD15EA5E + cfg.log2_n);
    const auto rep = mon.test_window(src);
    EXPECT_EQ(rep.software.verdicts.size(), cfg.tests.count());
    if (cfg.log2_n >= 16) {
        // The paper's latency claim targets the long designs; at n = 128
        // the software pass is longer than one 128-cycle window, so those
        // designs test windows at a duty cycle instead.
        EXPECT_LT(rep.sw_cycles, rep.generation_cycles) << cfg.name;
    }
    // A single window of an ideal source overwhelmingly passes; tolerate
    // at most one marginal single-test failure.
    unsigned failures = 0;
    for (const auto& v : rep.software.verdicts) {
        failures += v.pass ? 0 : 1;
    }
    EXPECT_LE(failures, 1u) << cfg.name << "\n"
                            << core::format_window(rep);
}

TEST_P(every_design, stuck_source_fails_everywhere)
{
    const hw::block_config cfg = GetParam();
    core::monitor mon(cfg, 0.01);
    trng::stuck_source src(true);
    const auto rep = mon.test_window(src);
    EXPECT_FALSE(rep.software.all_pass) << cfg.name;
}

INSTANTIATE_TEST_SUITE_P(
    paper_designs, every_design,
    ::testing::ValuesIn(core::all_paper_designs()),
    [](const ::testing::TestParamInfo<hw::block_config>& info) {
        std::string name = info.param.name;
        for (char& c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c))) {
                c = '_';
            }
        }
        return name;
    });

TEST(integration, monitor_restarts_are_independent)
{
    // The same bits through a restarted monitor give the same verdicts:
    // no state leaks across windows.
    const auto cfg = core::paper_design(7, core::tier::medium);
    core::monitor mon(cfg, 0.01);
    trng::ideal_source src(99);
    const bit_sequence window = src.generate(128);
    const auto first = mon.test_sequence(window);
    const auto second = mon.test_sequence(window);
    ASSERT_EQ(first.software.verdicts.size(),
              second.software.verdicts.size());
    for (std::size_t i = 0; i < first.software.verdicts.size(); ++i) {
        EXPECT_EQ(first.software.verdicts[i].statistic,
                  second.software.verdicts[i].statistic);
        EXPECT_EQ(first.software.verdicts[i].pass,
                  second.software.verdicts[i].pass);
    }
}

TEST(integration, aging_device_degrades_gracefully)
{
    // A slowly aging source passes early windows and fails late ones --
    // the "slow tests for long-term weaknesses" scenario.
    const auto cfg = core::custom_design(
        12, hw::test_set{}
                .with(hw::test_id::frequency)
                .with(hw::test_id::block_frequency)
                .with(hw::test_id::runs)
                .with(hw::test_id::longest_run)
                .with(hw::test_id::cumulative_sums));
    core::monitor mon(cfg, 0.01);
    trng::aging_source src(55, 0.56, 81920); // drifts over 20 windows
    unsigned early_failures = 0;
    unsigned late_failures = 0;
    for (unsigned w = 0; w < 20; ++w) {
        const bool fail = !mon.test_window(src).software.all_pass;
        if (w < 3) {
            early_failures += fail;
        }
        if (w >= 17) {
            late_failures += fail;
        }
    }
    EXPECT_LE(early_failures, 1u) << "a young device is near-healthy";
    EXPECT_EQ(late_failures, 3u) << "an aged device fails every window";
}

TEST(integration, report_formatting_mentions_all_tests)
{
    const auto cfg = core::paper_design(16, core::tier::high);
    core::monitor mon(cfg, 0.01);
    trng::ideal_source src(123);
    const auto rep = mon.test_window(src);
    const std::string text = core::format_window(rep);
    for (const char* name : {"frequency", "runs", "serial",
                             "cumulative_sums", "sw latency"}) {
        EXPECT_NE(text.find(name), std::string::npos) << name;
    }
    const hw::testing_block block(cfg);
    const std::string area = core::format_area(block);
    EXPECT_NE(area.find("slices"), std::string::npos);
    EXPECT_NE(area.find("GE"), std::string::npos);
}

} // namespace
