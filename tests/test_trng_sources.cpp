// Tests of the entropy-source models: determinism, parameter fidelity
// (empirical bias / persistence), failure modes and the ring-oscillator
// injection-locking behaviour.
#include "trng/ring_oscillator.hpp"
#include "trng/sources.hpp"

#include "support/fixed_seed.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>

namespace {

using namespace otf;
using namespace otf::trng;

TEST(xoshiro, golden_outputs_for_canonical_seed)
{
    // Bit-exact anchor for the whole stochastic suite: xoshiro256** with
    // splitmix64 seeding is a published algorithm, so these words must
    // never change.  If this test fails, every tuned statistical threshold
    // in the suite is suspect.
    xoshiro256ss rng(otf::test::kCanonicalSeed);
    EXPECT_EQ(rng.next(), 0xe7cc4e7b3a20be93ULL);
    EXPECT_EQ(rng.next(), 0x85eaf099a4317ee3ULL);
    EXPECT_EQ(rng.next(), 0x5eb60a1be2d9bf6fULL);
    EXPECT_EQ(rng.next(), 0xa23cf4707f3e725eULL);
}

TEST(xoshiro, fixture_seeds_are_distinct)
{
    xoshiro256ss a(otf::test::fixture_seed(0));
    xoshiro256ss b(otf::test::fixture_seed(1));
    EXPECT_NE(a.next(), b.next());
}

TEST(sources, all_seeded_models_are_reproducible)
{
    // Two identically-constructed instances of every seeded model must
    // produce identical streams; hidden global state (a shared RNG, a
    // static counter) would break this immediately instead of surfacing
    // as a rare statistical flake.
    const auto expect_same = [](entropy_source& x, entropy_source& y) {
        EXPECT_EQ(x.generate(2048).to_string(), y.generate(2048).to_string())
            << x.name();
    };
    const std::uint64_t seed = otf::test::kCanonicalSeed;
    {
        ideal_source a(seed), b(seed);
        expect_same(a, b);
    }
    {
        biased_source a(seed, 0.55), b(seed, 0.55);
        expect_same(a, b);
    }
    {
        markov_source a(seed, 0.6), b(seed, 0.6);
        expect_same(a, b);
    }
    {
        burst_failure_source a(seed, 0.01, 64), b(seed, 0.01, 64);
        expect_same(a, b);
    }
    {
        aging_source a(seed, 0.7, 1000), b(seed, 0.7, 1000);
        expect_same(a, b);
    }
    {
        ring_oscillator_source a(seed, {}), b(seed, {});
        expect_same(a, b);
    }
}

TEST(xoshiro, deterministic_for_equal_seeds)
{
    xoshiro256ss a(42);
    xoshiro256ss b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(xoshiro, different_seeds_diverge)
{
    xoshiro256ss a(1);
    xoshiro256ss b(2);
    unsigned equal = 0;
    for (int i = 0; i < 64; ++i) {
        equal += (a.next() == b.next()) ? 1 : 0;
    }
    EXPECT_LT(equal, 2u);
}

TEST(xoshiro, doubles_in_unit_interval)
{
    xoshiro256ss rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(ideal_source, roughly_balanced)
{
    ideal_source src(11);
    const bit_sequence seq = src.generate(65536);
    const double p = static_cast<double>(seq.count_ones()) / seq.size();
    EXPECT_NEAR(p, 0.5, 0.01);
}

TEST(ideal_source, generate_is_equivalent_to_bit_loop)
{
    ideal_source a(5);
    ideal_source b(5);
    const bit_sequence bulk = a.generate(256);
    for (std::size_t i = 0; i < bulk.size(); ++i) {
        EXPECT_EQ(bulk[i], b.next_bit());
    }
}

class bias_sweep : public ::testing::TestWithParam<double> {};

TEST_P(bias_sweep, empirical_bias_matches_parameter)
{
    const double p = GetParam();
    biased_source src(123, p);
    const bit_sequence seq = src.generate(100000);
    const double measured =
        static_cast<double>(seq.count_ones()) / seq.size();
    EXPECT_NEAR(measured, p, 0.01) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(levels, bias_sweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.52, 0.7,
                                           0.9, 1.0));

TEST(biased_source, rejects_invalid_probability)
{
    EXPECT_THROW(biased_source(1, -0.1), std::invalid_argument);
    EXPECT_THROW(biased_source(1, 1.1), std::invalid_argument);
}

class persistence_sweep : public ::testing::TestWithParam<double> {};

TEST_P(persistence_sweep, empirical_persistence_matches_parameter)
{
    const double persistence = GetParam();
    markov_source src(99, persistence);
    const std::size_t n = 100000;
    const bit_sequence seq = src.generate(n);
    std::size_t repeats = 0;
    for (std::size_t i = 1; i < n; ++i) {
        repeats += (seq[i] == seq[i - 1]) ? 1 : 0;
    }
    const double measured = static_cast<double>(repeats) / (n - 1);
    EXPECT_NEAR(measured, persistence, 0.01);
}

INSTANTIATE_TEST_SUITE_P(levels, persistence_sweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.55, 0.7, 0.9));

TEST(markov_source, marginally_balanced_even_when_sticky)
{
    markov_source src(17, 0.8);
    const bit_sequence seq = src.generate(100000);
    const double p = static_cast<double>(seq.count_ones()) / seq.size();
    EXPECT_NEAR(p, 0.5, 0.02);
}

TEST(stuck_source, emits_constant)
{
    stuck_source zero(false);
    stuck_source one(true);
    EXPECT_EQ(zero.generate(100).count_ones(), 0u);
    EXPECT_EQ(one.generate(100).count_ones(), 100u);
    EXPECT_EQ(zero.name(), "stuck-at-0");
    EXPECT_EQ(one.name(), "stuck-at-1");
}

TEST(periodic_source, repeats_pattern)
{
    periodic_source src(bit_sequence::from_string("101"));
    const bit_sequence seq = src.generate(9);
    EXPECT_EQ(seq.to_string(), "101101101");
}

TEST(periodic_source, rejects_empty_pattern)
{
    EXPECT_THROW(periodic_source(bit_sequence{}), std::invalid_argument);
}

TEST(burst_failure_source, no_bursts_means_ideal_like_balance)
{
    burst_failure_source src(3, 0.0, 100);
    const bit_sequence seq = src.generate(50000);
    const double p = static_cast<double>(seq.count_ones()) / seq.size();
    EXPECT_NEAR(p, 0.5, 0.02);
}

TEST(burst_failure_source, bursts_create_long_runs)
{
    burst_failure_source src(3, 0.01, 200);
    const bit_sequence seq = src.generate(50000);
    unsigned longest = 0;
    unsigned current = 1;
    for (std::size_t i = 1; i < seq.size(); ++i) {
        current = (seq[i] == seq[i - 1]) ? current + 1 : 1;
        longest = std::max(longest, current);
    }
    EXPECT_GE(longest, 150u)
        << "with ~250 expected bursts of 200, a long run must appear";
}

TEST(aging_source, bias_drifts_toward_final_value)
{
    aging_source src(9, 0.8, 50000);
    const bit_sequence early = src.generate(10000);
    bit_sequence late;
    {
        // Skip ahead so the source is past its lifetime.
        for (int i = 0; i < 50000; ++i) {
            (void)src.next_bit();
        }
        late = src.generate(10000);
    }
    const double p_early =
        static_cast<double>(early.count_ones()) / early.size();
    const double p_late =
        static_cast<double>(late.count_ones()) / late.size();
    EXPECT_LT(p_early, 0.60) << "young device is near-healthy";
    EXPECT_NEAR(p_late, 0.8, 0.02) << "aged device sits at final bias";
    EXPECT_NEAR(src.current_p_one(), 0.8, 1e-12);
}

TEST(replay_source, replays_and_exhausts)
{
    replay_source src(bit_sequence::from_string("0101"));
    EXPECT_FALSE(src.next_bit());
    EXPECT_TRUE(src.next_bit());
    EXPECT_EQ(src.remaining(), 2u);
    (void)src.next_bit();
    (void)src.next_bit();
    EXPECT_THROW((void)src.next_bit(), std::out_of_range);
}

TEST(ring_oscillator, healthy_output_is_roughly_balanced)
{
    ring_oscillator_source src(21, {});
    const bit_sequence seq = src.generate(65536);
    const double p = static_cast<double>(seq.count_ones()) / seq.size();
    EXPECT_NEAR(p, 0.5, 0.05);
}

TEST(ring_oscillator, injection_collapses_jitter)
{
    ring_oscillator_source src(21, {});
    const double healthy_sigma = src.effective_sigma();
    src.set_injection(0.9);
    EXPECT_NEAR(src.effective_sigma(), healthy_sigma * 0.1, 1e-12);
    src.set_injection(1.0);
    EXPECT_DOUBLE_EQ(src.effective_sigma(), 0.0);
}

TEST(ring_oscillator, full_lock_makes_output_constant)
{
    ring_oscillator_source src(33, {});
    src.set_injection(1.0);
    const bit_sequence seq = src.generate(1024);
    // Locked to an integer ratio with zero jitter: the same phase is
    // sampled forever, so the output is constant after the first bit.
    const std::size_t ones = seq.count_ones();
    EXPECT_TRUE(ones == 0 || ones == seq.size());
}

TEST(ring_oscillator, attack_increases_runs_structure)
{
    // Under partial lock the decorrelating phase diffusion shrinks, so the
    // number of runs collapses far below n/2.
    ring_oscillator_source healthy(5, {});
    ring_oscillator_source attacked(5, {});
    attacked.set_injection(0.97);
    const auto count_runs = [](const bit_sequence& s) {
        std::size_t runs = 1;
        for (std::size_t i = 1; i < s.size(); ++i) {
            runs += (s[i] != s[i - 1]) ? 1 : 0;
        }
        return runs;
    };
    const std::size_t n = 16384;
    const std::size_t healthy_runs = count_runs(healthy.generate(n));
    const std::size_t attacked_runs = count_runs(attacked.generate(n));
    EXPECT_GT(healthy_runs, n / 3);
    EXPECT_LT(attacked_runs, healthy_runs / 2);
}

TEST(ring_oscillator, rejects_bad_parameters)
{
    EXPECT_THROW(ring_oscillator_source(1, {.ratio = 0.5}),
                 std::invalid_argument);
    ring_oscillator_source src(1, {});
    EXPECT_THROW(src.set_injection(1.5), std::invalid_argument);
    EXPECT_THROW(src.set_injection(-0.1), std::invalid_argument);
}

} // namespace
