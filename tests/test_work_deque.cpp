// Tests of the Chase-Lev work-stealing deque behind the fused fleet and
// population schedulers: LIFO owner order, FIFO steal order, capacity
// behaviour, and -- the property everything else rests on -- exactly-once
// delivery under concurrent stealing.
#include "base/work_deque.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace {

using otf::base::work_deque;

TEST(work_deque, owner_pops_lifo_thief_steals_fifo)
{
    work_deque<std::uint32_t> dq(8);
    for (std::uint32_t v = 0; v < 4; ++v) {
        ASSERT_TRUE(dq.push(v));
    }
    std::uint32_t got = 0;
    ASSERT_TRUE(dq.steal(got));
    EXPECT_EQ(got, 0u) << "thieves take the oldest unit";
    ASSERT_TRUE(dq.pop(got));
    EXPECT_EQ(got, 3u) << "the owner takes its newest (cache-hot) unit";
    ASSERT_TRUE(dq.pop(got));
    EXPECT_EQ(got, 2u);
    ASSERT_TRUE(dq.steal(got));
    EXPECT_EQ(got, 1u);
    EXPECT_TRUE(dq.empty());
    EXPECT_FALSE(dq.pop(got));
    EXPECT_FALSE(dq.steal(got));
}

TEST(work_deque, capacity_is_rounded_up_and_enforced)
{
    work_deque<std::uint32_t> dq(5); // rounds up to 8
    EXPECT_EQ(dq.capacity(), 8u);
    for (std::uint32_t v = 0; v < 8; ++v) {
        EXPECT_TRUE(dq.push(v)) << v;
    }
    EXPECT_FALSE(dq.push(99)) << "a full deque must refuse, not overwrite";
    std::uint32_t got = 0;
    ASSERT_TRUE(dq.steal(got));
    EXPECT_EQ(got, 0u);
    EXPECT_TRUE(dq.push(99)) << "stealing frees a slot";

    work_deque<std::uint32_t> tiny(0); // degenerate request still works
    EXPECT_GE(tiny.capacity(), 1u);
    EXPECT_TRUE(tiny.push(7));
    ASSERT_TRUE(tiny.pop(got));
    EXPECT_EQ(got, 7u);
}

TEST(work_deque, drains_interleaved_push_pop_across_wraparound)
{
    // Push/pop cycles past the capacity several times over, so the
    // index mask wraps; every value must come back exactly once.
    work_deque<std::uint64_t> dq(4);
    std::uint64_t next = 0;
    std::vector<bool> seen(64, false);
    for (int round = 0; round < 16; ++round) {
        while (next < 64 && dq.push(next)) {
            ++next;
        }
        std::uint64_t got = 0;
        while (dq.pop(got)) {
            ASSERT_LT(got, 64u);
            ASSERT_FALSE(seen[got]) << "value " << got << " came twice";
            seen[got] = true;
        }
    }
    for (std::size_t v = 0; v < 64; ++v) {
        EXPECT_TRUE(seen[v]) << "value " << v << " was lost";
    }
}

TEST(work_deque, concurrent_thieves_claim_every_unit_exactly_once)
{
    // The scheduler's correctness contract: with the owner popping and
    // several thieves stealing concurrently, every pushed unit is
    // delivered to exactly one claimant.  Each claimant bumps a per-unit
    // counter; any counter != 1 is a lost or duplicated unit.
    constexpr std::uint32_t units = 4096;
    constexpr unsigned thieves = 3;
    work_deque<std::uint32_t> dq(units);
    for (std::uint32_t v = 0; v < units; ++v) {
        ASSERT_TRUE(dq.push(v));
    }
    std::vector<std::atomic<std::uint32_t>> claimed(units);
    std::atomic<bool> owner_done{false};

    std::vector<std::thread> pool;
    pool.reserve(thieves + 1);
    pool.emplace_back([&] { // owner
        std::uint32_t got = 0;
        while (dq.pop(got)) {
            claimed[got].fetch_add(1, std::memory_order_relaxed);
        }
        owner_done.store(true);
    });
    for (unsigned t = 0; t < thieves; ++t) {
        pool.emplace_back([&] {
            std::uint32_t got = 0;
            for (;;) {
                if (dq.steal(got)) {
                    claimed[got].fetch_add(1, std::memory_order_relaxed);
                } else if (owner_done.load() && dq.empty()) {
                    // A failed steal can be a lost race; only an empty
                    // deque with the owner finished proves completion.
                    return;
                }
            }
        });
    }
    for (std::thread& t : pool) {
        t.join();
    }
    for (std::uint32_t v = 0; v < units; ++v) {
        ASSERT_EQ(claimed[v].load(), 1u) << "unit " << v;
    }
    EXPECT_TRUE(dq.empty());
}

} // namespace
