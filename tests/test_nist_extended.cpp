// Tests of the six extended NIST tests (the paper's future-work coverage
// of the remaining suite): GF(2) rank against exhaustive enumeration,
// FFT against a direct DFT, Berlekamp-Massey against known LFSRs, the
// universal statistic against the SP 800-22 worked example, excursion
// probabilities against their closed forms, and defect-detection
// properties for each test.
#include "base/json.hpp"
#include "nist/battery.hpp"
#include "nist/extended_tests.hpp"
#include "nist/fft.hpp"
#include "nist/gf2.hpp"
#include "trng/sources.hpp"

#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

using namespace otf;
using namespace otf::nist;

// ------------------------------------------------------------------ GF(2) --
TEST(gf2, rank_of_known_matrices)
{
    // Identity.
    EXPECT_EQ(gf2_rank({0b001, 0b010, 0b100}, 3), 3u);
    // Repeated row.
    EXPECT_EQ(gf2_rank({0b011, 0b011, 0b100}, 3), 2u);
    // Row is the XOR of the others.
    EXPECT_EQ(gf2_rank({0b011, 0b101, 0b110}, 3), 2u);
    // Zero matrix.
    EXPECT_EQ(gf2_rank({0, 0, 0}, 3), 0u);
}

TEST(gf2, rank_distribution_matches_exhaustive_enumeration)
{
    // All 512 3x3 binary matrices, exact.
    std::vector<unsigned> histogram(4, 0);
    for (unsigned bits = 0; bits < 512; ++bits) {
        const std::vector<std::uint64_t> rows = {
            bits & 7u, (bits >> 3) & 7u, (bits >> 6) & 7u};
        ++histogram[gf2_rank(rows, 3)];
    }
    for (unsigned r = 0; r <= 3; ++r) {
        const double expected = gf2_rank_probability(3, 3, r);
        EXPECT_NEAR(static_cast<double>(histogram[r]) / 512.0, expected,
                    1e-12)
            << "rank " << r;
    }
}

TEST(gf2, nist_32x32_category_probabilities)
{
    // SP 800-22 section 3.5 quotes ~0.2888 / 0.5776 / 0.1336.
    EXPECT_NEAR(gf2_rank_probability(32, 32, 32), 0.2888, 5e-4);
    EXPECT_NEAR(gf2_rank_probability(32, 32, 31), 0.5776, 5e-4);
    double below = 0.0;
    for (unsigned r = 0; r <= 30; ++r) {
        below += gf2_rank_probability(32, 32, r);
    }
    EXPECT_NEAR(below, 0.1336, 5e-4);
}

TEST(matrix_rank_test, healthy_source_passes)
{
    trng::ideal_source src(3);
    const auto r = matrix_rank_test(src.generate(65536));
    EXPECT_EQ(r.matrices, 64u);
    EXPECT_EQ(r.full_rank + r.one_less + r.remaining, 64u);
    EXPECT_GT(r.p_value, 1e-4);
}

TEST(matrix_rank_test, rank_deficient_stream_fails)
{
    // A period-32 stream makes every 32x32 matrix have identical rows.
    trng::ideal_source src(4);
    bit_sequence pattern = src.generate(32);
    bit_sequence seq;
    for (unsigned i = 0; i < 65536; ++i) {
        seq.push_back(pattern[i % 32]);
    }
    const auto r = matrix_rank_test(seq);
    EXPECT_EQ(r.full_rank, 0u);
    EXPECT_LT(r.p_value, 1e-12);
}

// -------------------------------------------------------------------- FFT --
TEST(fft, matches_direct_dft)
{
    trng::ideal_source src(5);
    std::vector<double> x(64);
    for (auto& v : x) {
        v = src.next_bit() ? 1.0 : -1.0;
    }
    // Power-of-two path (FFT).
    const auto fast = dft_magnitudes(x);
    // Force the direct path by appending one sample of a 65-length copy.
    std::vector<double> y(x.begin(), x.end());
    y.push_back(1.0);
    const auto direct = dft_magnitudes(y);
    // Compare the FFT against an independent direct computation at n=64.
    for (std::size_t j = 0; j < fast.size(); ++j) {
        double re = 0.0;
        double im = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
            const double a = -2.0 * M_PI * static_cast<double>(j)
                * static_cast<double>(i) / 64.0;
            re += x[i] * std::cos(a);
            im += x[i] * std::sin(a);
        }
        EXPECT_NEAR(fast[j], std::hypot(re, im), 1e-9) << "bin " << j;
    }
    EXPECT_EQ(direct.size(), 32u);
}

TEST(fft, rejects_non_power_of_two)
{
    std::vector<std::complex<double>> data(12);
    EXPECT_THROW(fft_radix2(data), std::invalid_argument);
}

TEST(dft_test, healthy_source_passes)
{
    trng::ideal_source src(6);
    const auto r = dft_test(src.generate(4096));
    EXPECT_GT(r.p_value, 1e-4);
    EXPECT_NEAR(r.n0, 0.95 * 4096 / 2.0, 1e-9);
}

TEST(dft_test, periodic_source_fails)
{
    trng::periodic_source src(bit_sequence::from_string("1100"));
    const auto r = dft_test(src.generate(4096));
    EXPECT_LT(r.p_value, 1e-9) << "a strong tone must blow the peak count";
}

// -------------------------------------------------------------- universal --
TEST(universal, nist_worked_example_statistic)
{
    // SP 800-22 2.9.4: eps = 01011010011101010111, L = 2, Q = 4, K = 6:
    // fn = 1.1949875.
    const auto r = universal_test(
        bit_sequence::from_string("01011010011101010111"), 2, 4);
    EXPECT_EQ(r.test_blocks, 6u);
    EXPECT_NEAR(r.fn, 1.1949875, 1e-6);
    EXPECT_GT(r.p_value, 0.0);
    EXPECT_LT(r.p_value, 1.0);
}

TEST(universal, healthy_source_passes)
{
    trng::ideal_source src(7);
    // L = 5, Q = 320: needs 10 * 2^5 init blocks plus test blocks.
    const auto r = universal_test(src.generate(200000), 5, 320);
    EXPECT_GT(r.p_value, 1e-4);
    EXPECT_NEAR(r.fn, r.expected, 0.2);
}

TEST(universal, periodic_source_fails)
{
    trng::periodic_source src(bit_sequence::from_string("01100"));
    const auto r = universal_test(src.generate(200000), 5, 320);
    EXPECT_LT(r.p_value, 1e-9)
        << "a periodic source revisits patterns at tiny distances";
}

TEST(universal, rejects_too_short_input)
{
    trng::ideal_source src(8);
    EXPECT_THROW(universal_test(src.generate(100), 5, 320),
                 std::invalid_argument);
}

// ------------------------------------------------------- linear complexity --
TEST(berlekamp_massey, known_small_cases)
{
    // SP 800-22 2.10.4 example: 1101011110001 has L = 4.
    std::vector<std::uint8_t> bits = {1, 1, 0, 1, 0, 1, 1, 1, 1, 0, 0, 0,
                                      1};
    EXPECT_EQ(berlekamp_massey(bits), 4u);
    // All zeros: complexity 0.  Single one at the end: complexity n.
    EXPECT_EQ(berlekamp_massey({0, 0, 0, 0}), 0u);
    EXPECT_EQ(berlekamp_massey({0, 0, 0, 1}), 4u);
    // Alternating sequence: complexity 2.
    EXPECT_EQ(berlekamp_massey({1, 0, 1, 0, 1, 0, 1, 0}), 2u);
}

TEST(berlekamp_massey, lfsr_sequence_has_its_degree)
{
    // x^4 + x + 1, a maximal-length LFSR: complexity 4 at any length.
    std::vector<std::uint8_t> state = {1, 0, 0, 1};
    std::vector<std::uint8_t> stream;
    for (unsigned i = 0; i < 64; ++i) {
        stream.push_back(state[0]);
        const std::uint8_t feedback =
            static_cast<std::uint8_t>(state[0] ^ state[1]);
        state.erase(state.begin());
        state.push_back(feedback);
    }
    EXPECT_EQ(berlekamp_massey(stream), 4u);
}

TEST(linear_complexity_test, healthy_source_passes)
{
    trng::ideal_source src(9);
    const auto r = linear_complexity_test(src.generate(100000), 500);
    EXPECT_EQ(r.blocks, 200u);
    EXPECT_GT(r.p_value, 1e-4);
    EXPECT_EQ(std::accumulate(r.nu.begin(), r.nu.end(), std::uint64_t{0}),
              200u);
}

TEST(linear_complexity_test, lfsr_stream_fails)
{
    // A degree-16 LFSR fools every simple statistic but has complexity 16
    // in each 500-bit block: every block lands in the lowest category.
    std::uint32_t lfsr = 0xACE1u;
    bit_sequence seq;
    for (unsigned i = 0; i < 100000; ++i) {
        const unsigned bit =
            ((lfsr >> 0) ^ (lfsr >> 2) ^ (lfsr >> 3) ^ (lfsr >> 5)) & 1u;
        lfsr = static_cast<std::uint32_t>((lfsr >> 1) | (bit << 15));
        seq.push_back((lfsr & 1u) != 0);
    }
    const auto r = linear_complexity_test(seq, 500);
    EXPECT_LT(r.p_value, 1e-12);
    EXPECT_EQ(r.nu[3], 0u) << "no block near the random expectation M/2";
}

// ------------------------------------------------------ random excursions --
TEST(excursion_probabilities, closed_forms)
{
    // pi_0(x) = 1 - 1/(2|x|); sum over the six bins is 1.
    EXPECT_DOUBLE_EQ(excursion_visit_probability(1, 0), 0.5);
    EXPECT_DOUBLE_EQ(excursion_visit_probability(1, 1), 0.25);
    EXPECT_DOUBLE_EQ(excursion_visit_probability(1, 5), 0.03125);
    EXPECT_DOUBLE_EQ(excursion_visit_probability(4, 0), 0.875);
    for (const int x : {-4, -3, -2, -1, 1, 2, 3, 4}) {
        double total = 0.0;
        for (unsigned k = 0; k <= 5; ++k) {
            total += excursion_visit_probability(x, k);
        }
        EXPECT_NEAR(total, 1.0, 1e-12) << "state " << x;
    }
}

TEST(random_excursions, nist_example_cycle_count)
{
    // 2.14.4: eps = 0110110101 has J = 3 cycles (the unfinished walk at
    // the end closes the last one).
    const auto r =
        random_excursions_test(bit_sequence::from_string("0110110101"));
    EXPECT_EQ(r.cycles, 3u);
    EXPECT_FALSE(r.applicable) << "J = 3 is far below the 500 minimum";
    EXPECT_EQ(r.states.size(), 8u);
}

TEST(random_excursions, healthy_long_sequence)
{
    // J (the cycle count) has enormous variance -- E[J] ~ 0.8 sqrt(n) but
    // J < 500 happens for roughly half of all 2^20-bit windows, in which
    // case NIST marks the test inapplicable.  Seed 11 yields J = 1159.
    trng::ideal_source src(11);
    const auto r = random_excursions_test(src.generate(1u << 20));
    EXPECT_TRUE(r.applicable) << "J = " << r.cycles;
    for (std::size_t i = 0; i < r.p_values.size(); ++i) {
        EXPECT_GT(r.p_values[i], 1e-5) << "state " << r.states[i];
        EXPECT_LE(r.p_values[i], 1.0);
    }
}

TEST(random_excursions_variant, healthy_long_sequence)
{
    trng::ideal_source src(11);
    const auto r = random_excursions_variant_test(src.generate(1u << 20));
    EXPECT_TRUE(r.applicable);
    ASSERT_EQ(r.states.size(), 18u);
    ASSERT_EQ(r.visits.size(), 18u);
    for (std::size_t i = 0; i < r.p_values.size(); ++i) {
        EXPECT_GT(r.p_values[i], 1e-5) << "state " << r.states[i];
    }
}

TEST(random_excursions_variant, asymmetric_walk_fails)
{
    // Bias makes the walk transient (J collapses, the test correctly
    // becomes inapplicable), so the right stimulus is a *recurrent but
    // asymmetric* walk: the pattern 110100 returns to zero every six bits
    // while spending all its time above the axis, so xi(+1) = 3J.
    trng::periodic_source src(bit_sequence::from_string("110100"));
    const auto r = random_excursions_variant_test(src.generate(1u << 18));
    EXPECT_TRUE(r.applicable) << "J = " << r.cycles;
    unsigned failures = 0;
    for (const double p : r.p_values) {
        failures += (p < 0.01) ? 1 : 0;
    }
    EXPECT_GT(failures, 4u);
}

TEST(random_excursions_variant, transient_walk_is_inapplicable)
{
    // The NIST convention: heavy bias drives the walk away from zero, the
    // cycle count collapses, and the excursion tests abstain rather than
    // decide from a handful of cycles.
    trng::biased_source src(12, 0.55);
    const auto r = random_excursions_variant_test(src.generate(1u << 18));
    EXPECT_FALSE(r.applicable);
}

// ---------------------------------------------------------------- battery --
TEST(battery, healthy_source_passes_nearly_everything)
{
    // Seed 11 gives an excursion-applicable window (J = 1159), so all 15
    // tests contribute P-values.
    trng::ideal_source src(11);
    const auto report = run_battery(src.generate(1u << 20), 0.01);
    EXPECT_GT(report.entries.size(), 30u)
        << "15 tests, several with multiple P-values";
    EXPECT_EQ(report.skipped, 0u) << "this window qualifies every test";
    // ~40 P-values at alpha = 0.01: allow a small number of type-1 events.
    EXPECT_LE(report.failed, 2u);
}

TEST(battery, short_sequences_skip_inapplicable_tests)
{
    trng::ideal_source src(14);
    const auto report = run_battery(src.generate(65536), 0.01);
    EXPECT_GT(report.skipped, 0u)
        << "the excursion tests need ~500 cycles";
}

TEST(battery, stuck_source_fails_broadly)
{
    const auto report = run_battery(bit_sequence(65536, true), 0.01);
    EXPECT_GT(report.failed, 3u);
    EXPECT_FALSE(report.all_pass());
}

TEST(battery, registry_covers_all_fifteen_tests_in_order)
{
    const auto& tests = battery_tests();
    ASSERT_EQ(tests.size(), 15u);
    for (std::size_t i = 0; i < tests.size(); ++i) {
        EXPECT_EQ(tests[i].number, i + 1);
        EXPECT_FALSE(tests[i].name.empty());
        EXPECT_TRUE(static_cast<bool>(tests[i].run));
    }
}

TEST(battery, subset_selection_runs_only_the_selected_tests)
{
    trng::ideal_source src(31);
    const bit_sequence seq = src.generate(65536);
    const auto report = run_battery(
        seq, 0.01,
        battery_selection{}.with(1).with(3).with(13));
    // frequency (1 P-value) + runs (1) + cusum (2 P-values).
    ASSERT_EQ(report.entries.size(), 4u);
    EXPECT_EQ(report.entries[0].test_number, 1u);
    EXPECT_EQ(report.entries[1].test_number, 3u);
    EXPECT_EQ(report.entries[2].test_number, 13u);
    EXPECT_EQ(report.entries[3].test_number, 13u);
    EXPECT_EQ(report.skipped, 0u);
}

TEST(battery, subset_matches_the_full_pass_entry_for_entry)
{
    // No duplicated implementations: the subset API and the classic
    // full pass must produce identical P-values for the shared tests.
    trng::ideal_source src(32);
    const bit_sequence seq = src.generate(65536);
    const auto full = run_battery(seq, 0.01);
    const auto subset =
        run_battery(seq, 0.01, battery_selection{}.with(6).with(11));
    for (const auto& e : subset.entries) {
        bool found = false;
        for (const auto& f : full.entries) {
            if (f.test_number == e.test_number && f.name == e.name) {
                EXPECT_EQ(f.p_value, e.p_value) << e.name;
                EXPECT_EQ(f.pass, e.pass) << e.name;
                found = true;
            }
        }
        EXPECT_TRUE(found) << e.name;
    }
}

TEST(battery, short_sequences_record_skips_instead_of_dropping)
{
    trng::ideal_source src(33);
    const bit_sequence seq = src.generate(1024);
    const auto report =
        run_battery(seq, 0.01, battery_selection{}.with(8).with(10));
    // Both tests need more than 1024 bits: each must appear as a
    // skipped (inapplicable) entry, not vanish.
    ASSERT_EQ(report.entries.size(), 2u);
    EXPECT_EQ(report.skipped, 2u);
    EXPECT_FALSE(report.entries[0].applicable);
    EXPECT_FALSE(report.entries[1].applicable);
}

TEST(battery, selection_validates_test_numbers)
{
    EXPECT_THROW(battery_selection{}.with(0), std::invalid_argument);
    EXPECT_THROW(battery_selection{}.with(16), std::invalid_argument);
    trng::ideal_source src(34);
    EXPECT_THROW(run_battery(src.generate(1024), 0.01,
                             battery_selection{}),
                 std::invalid_argument);
    EXPECT_EQ(battery_selection::all().count(), 15u);
}

TEST(battery, report_serializes_as_json)
{
    trng::ideal_source src(35);
    const auto report = run_battery(
        src.generate(4096), 0.01,
        battery_selection{}.with(1).with(13));
    json_writer json;
    write_battery(json, {}, report);
    const std::string text = json.str();
    EXPECT_NE(text.find("\"entries\""), std::string::npos);
    EXPECT_NE(text.find("\"cusum forward\""), std::string::npos);
    EXPECT_NE(text.find("\"p_value\""), std::string::npos);
    EXPECT_NE(text.find("\"all_pass\""), std::string::npos);
}

} // namespace
