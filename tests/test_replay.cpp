// Deterministic replay of supervised runs from the durable telemetry
// log (core/telemetry_log.hpp).
//
// For every scenario in the adversarial library the supervised run is
// executed with a telemetry log attached, the segment is read back, and
// the replay pass must reproduce the live run exactly: the event
// timeline verbatim (dwell counters and all) and every offline
// confirmation bit-identical in its P-values.  Both capture policies
// are exercised -- full raw-evidence capture and transitions-only --
// and the valid-prefix story is carried through the typed layer:
// truncating a real segment yields a replayable prefix, and a frame
// with an unknown type byte is skipped, not fatal.
#include "core/telemetry_log.hpp"

#include "core/design_config.hpp"
#include "core/scenario.hpp"
#include "core/supervisor.hpp"
#include "support/fixed_seed.hpp"
#include "trng/source_model.hpp"
#include "trng/sources.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace {

using namespace otf;

constexpr std::uint64_t kWindows = 64;
constexpr std::uint64_t kOnset = 8;
constexpr std::uint64_t kRamp = 8;

core::supervisor_config make_config()
{
    core::supervisor_config cfg;
    cfg.baseline = core::paper_design(16, core::tier::light);
    cfg.baseline.double_buffered = true;
    cfg.escalated = core::paper_design(16, core::tier::high);
    cfg.escalated.double_buffered = true;
    cfg.alpha = 0.001;
    cfg.fail_threshold = 3;
    cfg.policy_window = 8;
    cfg.evidence_windows = 4;
    cfg.dwell_windows = 12;
    cfg.offline_alpha = 0.01;
    cfg.offline_min_failures = 2;
    return cfg;
}

/// One supervised run of `sc` with an optional telemetry log attached.
core::supervision_report run_scenario(const core::scenario& sc,
                                      const core::supervisor_config& cfg,
                                      const core::critical_values& cv_base,
                                      const core::critical_values& cv_esc,
                                      core::telemetry_log* log)
{
    const std::size_t nwords =
        static_cast<std::size_t>(cfg.baseline.n() / 64);
    std::unique_ptr<trng::entropy_source> source =
        std::make_unique<trng::ideal_source>(otf::test::kCanonicalSeed);

    core::supervisor sup(cfg, cv_base, cv_esc);
    if (log != nullptr) {
        sup.attach_telemetry(log);
    }
    core::producer_options opts;
    if (sc.make_model) {
        auto stacked =
            sc.make_model(std::move(source), otf::test::fixture_seed(11));
        trng::source_model* model = stacked.get();
        opts.hook_stride_words = nwords;
        const core::severity_schedule schedule = sc.schedule;
        opts.word_hook = [model, schedule, nwords](std::uint64_t word) {
            model->set_severity(schedule.severity_at(word / nwords));
        };
        return sup.run(*stacked, kWindows, std::move(opts));
    }
    return sup.run(*source, kWindows, std::move(opts));
}

std::string temp_log(const std::string& tag)
{
    return "replay_test_" + tag + ".wal";
}

/// Live run + read-back + replay for one scenario and capture policy;
/// returns the recovered run for extra assertions.
core::telemetry_run check_scenario(const core::scenario& sc,
                                   bool log_windows)
{
    const core::supervisor_config cfg = make_config();
    const core::critical_values cv_base =
        core::compute_critical_values(cfg.baseline, cfg.alpha);
    const core::critical_values cv_esc =
        core::compute_critical_values(cfg.escalated, cfg.alpha);

    const std::string path =
        temp_log(sc.name + (log_windows ? "_full" : "_events"));
    core::supervision_report live;
    std::uint64_t dropped = 0;
    {
        core::telemetry_config tcfg;
        tcfg.path = path;
        tcfg.queue_capacity = 4096;
        tcfg.log_windows = log_windows;
        core::telemetry_log log(tcfg);
        live = run_scenario(sc, cfg, cv_base, cv_esc, &log);
        log.close();
        dropped = log.records_dropped();
    }
    EXPECT_EQ(dropped, 0u) << sc.name;

    const core::telemetry_run run = core::read_telemetry(path);
    std::remove(path.c_str());

    EXPECT_TRUE(run.header_ok) << sc.name;
    EXPECT_EQ(run.schema, core::telemetry_schema) << sc.name;
    EXPECT_TRUE(run.clean) << sc.name;
    EXPECT_TRUE(run.has_config) << sc.name;
    if (!run.has_config) {
        return run;
    }
    EXPECT_EQ(run.windows_logged, log_windows) << sc.name;

    // The logged timeline IS the live timeline -- sequence numbers,
    // dwell counters, design labels and battery P-values verbatim.
    EXPECT_EQ(run.events.size(), live.events.size()) << sc.name;
    for (std::size_t i = 0;
         i < std::min(run.events.size(), live.events.size()); ++i) {
        EXPECT_EQ(run.events[i], live.events[i])
            << sc.name << ", event " << i;
    }
    if (log_windows) {
        EXPECT_EQ(run.windows.size(), live.windows) << sc.name;
    } else {
        EXPECT_TRUE(run.windows.empty()) << sc.name;
    }

    // Deterministic replay: bit-identical confirmations.
    const core::replay_report rep = core::verify_replay(run);
    EXPECT_TRUE(rep.verified) << sc.name;
    EXPECT_TRUE(rep.checkpoints_consistent) << sc.name;
    EXPECT_TRUE(rep.ring_consistent) << sc.name;
    EXPECT_EQ(rep.events_replayed, live.events.size()) << sc.name;
    // One replayed verdict per escalation (confirmed or not).
    EXPECT_EQ(rep.confirmations.size(), live.escalations) << sc.name;
    for (const core::replay_confirmation& conf : rep.confirmations) {
        EXPECT_TRUE(conf.match) << sc.name << ", window " << conf.window;
        EXPECT_EQ(conf.live, conf.replayed) << sc.name;
    }
    return run;
}

TEST(Replay, EveryScenarioBitIdenticalFullCapture)
{
    unsigned escalated = 0;
    unsigned confirmed = 0;
    for (const core::scenario& sc : core::standard_scenarios(kOnset, kRamp)) {
        const core::telemetry_run run = check_scenario(sc, true);
        for (const core::supervision_event& ev : run.events) {
            if (ev.kind == core::supervision_event_kind::escalated) {
                ++escalated;
            }
            if (ev.kind == core::supervision_event_kind::confirmed
                && ev.confirmation && ev.confirmation->confirmed) {
                ++confirmed;
            }
        }
        if (!sc.expect_alarm) {
            // The null scenario must leave a quiet log: no events, just
            // the config (and the captured windows).
            EXPECT_TRUE(run.events.empty()) << sc.name;
            EXPECT_TRUE(run.checkpoints.empty()) << sc.name;
        }
    }
    // The library's attacks must actually exercise the escalation path,
    // otherwise the bit-identical claim above is vacuous.
    EXPECT_GE(escalated, 3u);
    EXPECT_GE(confirmed, 1u);
}

TEST(Replay, TransitionsOnlyCaptureStaysBitIdentical)
{
    // Without window records the replay draws its evidence from the
    // escalation checkpoints; verdicts must still be bit-identical.
    unsigned confirmations = 0;
    for (const core::scenario& sc : core::standard_scenarios(kOnset, kRamp)) {
        if (!sc.expect_alarm) {
            continue;
        }
        const core::telemetry_run run = check_scenario(sc, false);
        for (const core::supervision_event& ev : run.events) {
            confirmations +=
                ev.kind == core::supervision_event_kind::confirmed;
        }
    }
    EXPECT_GE(confirmations, 1u);
}

// ---------------------------------------------------------------------
// Valid-prefix behaviour through the typed layer.
// ---------------------------------------------------------------------

/// A real segment image from a supervised run of the first attack.
std::vector<std::uint8_t> attack_segment_image(bool log_windows)
{
    const core::supervisor_config cfg = make_config();
    const core::critical_values cv_base =
        core::compute_critical_values(cfg.baseline, cfg.alpha);
    const core::critical_values cv_esc =
        core::compute_critical_values(cfg.escalated, cfg.alpha);
    std::vector<core::scenario> scenarios =
        core::standard_scenarios(kOnset, kRamp);
    std::erase_if(scenarios, [](const core::scenario& sc) {
        return !sc.expect_alarm;
    });
    const std::string path = temp_log("prefix");
    {
        core::telemetry_config tcfg;
        tcfg.path = path;
        tcfg.queue_capacity = 4096;
        tcfg.log_windows = log_windows;
        core::telemetry_log log(tcfg);
        run_scenario(scenarios.front(), cfg, cv_base, cv_esc, &log);
    }
    std::vector<std::uint8_t> image;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::uint8_t chunk[4096];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
        image.insert(image.end(), chunk, chunk + got);
    }
    std::fclose(f);
    std::remove(path.c_str());
    return image;
}

TEST(Replay, TruncatedSegmentYieldsReplayablePrefix)
{
    const std::vector<std::uint8_t> image = attack_segment_image(true);
    const core::telemetry_run whole =
        core::parse_telemetry(base::wal_recover(image));
    ASSERT_TRUE(whole.has_config);
    ASSERT_FALSE(whole.order.empty());

    // Chop the image at a sweep of cut points (every 97 bytes keeps the
    // sweep dense but affordable on a multi-megabyte segment).  Every
    // cut must recover a typed prefix without throwing, and the records
    // must be verbatim prefixes of the whole run's.
    for (std::size_t cut = 0; cut <= image.size();
         cut += 97, cut = std::min(cut, image.size())) {
        const core::telemetry_run part =
            core::parse_telemetry(base::wal_recover(image.data(), cut));
        ASSERT_LE(part.order.size(), whole.order.size());
        ASSERT_LE(part.windows.size(), whole.windows.size());
        ASSERT_LE(part.events.size(), whole.events.size());
        for (std::size_t i = 0; i < part.windows.size(); ++i) {
            ASSERT_EQ(part.windows[i], whole.windows[i]) << "cut " << cut;
        }
        for (std::size_t i = 0; i < part.events.size(); ++i) {
            ASSERT_EQ(part.events[i], whole.events[i]) << "cut " << cut;
        }
        if (cut == image.size()) {
            EXPECT_EQ(part.order.size(), whole.order.size());
            break;
        }
    }
}

TEST(Replay, UnknownRecordKindIsSkipped)
{
    // A frame with a type byte from a future schema must be counted and
    // skipped -- the rest of the segment still replays.
    std::vector<std::uint8_t> image = attack_segment_image(false);

    // Append a CRC-valid frame with an unknown type (200).
    const std::uint8_t type = 200;
    const std::uint8_t payload[] = {1, 2, 3, 4};
    const std::uint32_t len = sizeof payload;
    std::uint32_t crc = base::crc32c(&type, 1);
    crc = base::crc32c(payload, len, crc);
    for (unsigned i = 0; i < 4; ++i) {
        image.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
    }
    for (unsigned i = 0; i < 4; ++i) {
        image.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    }
    image.push_back(type);
    image.insert(image.end(), payload, payload + len);

    const base::wal_read_result wal = base::wal_recover(image);
    EXPECT_TRUE(wal.clean);
    const core::telemetry_run run = core::parse_telemetry(wal);
    EXPECT_EQ(run.unknown_records, 1u);
    ASSERT_TRUE(run.has_config);
    const core::replay_report rep = core::verify_replay(run);
    EXPECT_TRUE(rep.verified);
}

TEST(Replay, MissingConfigIsAnError)
{
    // A segment with no run_config record cannot parameterize the
    // battery; verify_replay must refuse rather than guess.
    core::telemetry_run run;
    run.header_ok = true;
    run.schema = core::telemetry_schema;
    run.clean = true;
    EXPECT_THROW(core::verify_replay(run), std::invalid_argument);
}

} // namespace
