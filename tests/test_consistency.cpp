// Tests of the counter cross-consistency checks (the executable form of
// the paper's fault-attack argument): genuine hardware always passes,
// and forging any single transmitted value trips an invariant.
#include "core/consistency.hpp"
#include "core/design_config.hpp"
#include "hw/testing_block.hpp"
#include "trng/sources.hpp"

#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <string>

namespace {

using namespace otf;

/// A register map that mirrors a real one but lets a test forge (or
/// ground) a single named value -- the model of a probing attack on the
/// bus.
hw::register_map forge(const hw::register_map& genuine,
                       const std::string& victim, std::uint64_t forged)
{
    hw::register_map tampered;
    for (const auto& e : genuine.entries()) {
        auto read = (e.name == victim)
            ? std::function<std::uint64_t()>([forged] { return forged; })
            : e.read;
        if (e.group.empty()) {
            tampered.add_scalar(e.name, e.width, e.is_signed,
                                std::move(read));
        } else {
            tampered.add_group_element(e.group, e.name, e.width,
                                       e.is_signed, std::move(read));
        }
    }
    return tampered;
}

class consistency : public ::testing::TestWithParam<std::uint64_t> {
protected:
    void SetUp() override
    {
        cfg_ = core::paper_design(16, core::tier::high);
        block_ = std::make_unique<hw::testing_block>(cfg_);
        trng::ideal_source src(GetParam());
        block_->run(src.generate(cfg_.n()));
    }

    hw::block_config cfg_;
    std::unique_ptr<hw::testing_block> block_;
    sw16::soft_cpu cpu_{16};
};

TEST_P(consistency, genuine_hardware_is_always_consistent)
{
    const auto violations = core::verify_counter_consistency(
        cfg_, block_->registers(), cpu_);
    for (const auto& v : violations) {
        ADD_FAILURE() << v.check << ": " << v.detail;
    }
}

TEST_P(consistency, grounding_the_runs_counter_is_detected)
{
    // The classic probing attack: force one bus value to zero.
    const auto tampered = forge(block_->registers(), "runs.n_runs", 0);
    const auto violations =
        core::verify_counter_consistency(cfg_, tampered, cpu_);
    EXPECT_FALSE(violations.empty());
}

TEST_P(consistency, forging_a_block_count_is_detected)
{
    const auto tampered =
        forge(block_->registers(), "block_frequency.eps[3]", 2048);
    const auto violations =
        core::verify_counter_consistency(cfg_, tampered, cpu_);
    EXPECT_FALSE(violations.empty())
        << "the partition sum no longer matches N_ones";
}

TEST_P(consistency, forging_a_pattern_counter_is_detected)
{
    const auto genuine =
        block_->registers().read_value("serial.nu_m[5]");
    const auto tampered = forge(block_->registers(), "serial.nu_m[5]",
                                static_cast<std::uint64_t>(genuine) + 64);
    const auto violations =
        core::verify_counter_consistency(cfg_, tampered, cpu_);
    EXPECT_FALSE(violations.empty())
        << "both the file total and the marginal identity break";
}

TEST_P(consistency, forging_the_walk_extremum_is_detected)
{
    // Claim the walk never went negative while S_final says otherwise,
    // or shrink S_max below S_final.
    const auto s_final = block_->registers().read_value("cusum.s_final");
    const std::uint64_t forged = (s_final > 0)
        ? static_cast<std::uint64_t>(s_final - 1)
        : static_cast<std::uint64_t>(-1); // S_max = -1 < 0: sign violation
    const auto tampered =
        forge(block_->registers(), "cusum.s_max", forged);
    const auto violations =
        core::verify_counter_consistency(cfg_, tampered, cpu_);
    EXPECT_FALSE(violations.empty());
}

TEST_P(consistency, forging_a_category_counter_is_detected)
{
    const auto genuine =
        block_->registers().read_value("longest_run.nu[2]");
    const auto tampered = forge(block_->registers(), "longest_run.nu[2]",
                                static_cast<std::uint64_t>(genuine) + 3);
    const auto violations =
        core::verify_counter_consistency(cfg_, tampered, cpu_);
    EXPECT_FALSE(violations.empty());
}

TEST_P(consistency, checks_cost_only_adds_and_compares)
{
    sw16::soft_cpu counting(16);
    (void)core::verify_counter_consistency(cfg_, block_->registers(),
                                           counting);
    EXPECT_EQ(counting.counts().mul, 0u);
    EXPECT_EQ(counting.counts().sqr, 0u);
    EXPECT_EQ(counting.counts().lut, 0u);
    EXPECT_GT(counting.counts().add, 0u);
    EXPECT_GT(counting.counts().comp, 0u);
}

INSTANTIATE_TEST_SUITE_P(seeds, consistency,
                         ::testing::Values(3, 17, 101, 4242));

TEST(consistency_marginal_mode, skips_absent_files)
{
    hw::block_config cfg = core::paper_design(16, core::tier::high);
    cfg.serial_transfer_marginals = true;
    hw::testing_block block(cfg);
    trng::ideal_source src(7);
    block.run(src.generate(cfg.n()));
    sw16::soft_cpu cpu(16);
    const auto violations =
        core::verify_counter_consistency(cfg, block.registers(), cpu);
    EXPECT_TRUE(violations.empty());
}

} // namespace
