// Word-lane equivalence suite: the per-bit path is the oracle, and every
// batched fast lane must be bit-exact against it -- engine counters through
// the whole register map, health-test engines, bulk word generation, and
// the monitor's end-to-end verdicts.
#include "core/design_config.hpp"
#include "core/monitor.hpp"
#include "hw/health_tests.hpp"
#include "hw/testing_block.hpp"
#include "trng/sources.hpp"
#include "trng/xoshiro.hpp"

#include "support/fixed_seed.hpp"

#include <algorithm>
#include <cstdint>
#include <gtest/gtest.h>
#include <string>
#include <vector>

namespace {

using namespace otf;
using core::paper_design;
using core::tier;
using test::fixture_seed;
using test::kCanonicalSeed;

// ---------------------------------------------------------------------------
// Sequence classes that stress different batching corner cases.
// ---------------------------------------------------------------------------

bit_sequence random_sequence(std::uint64_t seed, std::uint64_t n)
{
    trng::ideal_source src(seed);
    return src.generate(n);
}

bit_sequence alternating_sequence(std::uint64_t n)
{
    bit_sequence seq;
    for (std::uint64_t i = 0; i < n; ++i) {
        seq.push_back((i & 1) != 0);
    }
    return seq;
}

// Repeats the non-overlapping test's 9-bit template so matches straddle
// word and block boundaries.
bit_sequence template_stress_sequence(std::uint64_t n)
{
    const bit_sequence pattern = bit_sequence::from_string("000000001");
    bit_sequence seq;
    for (std::uint64_t i = 0; i < n; ++i) {
        seq.push_back(pattern[i % pattern.size()]);
    }
    return seq;
}

std::vector<bit_sequence> stress_sequences(const hw::block_config& cfg)
{
    return {random_sequence(kCanonicalSeed, cfg.n()),
            random_sequence(fixture_seed(1), cfg.n()),
            bit_sequence(cfg.n(), true),
            bit_sequence(cfg.n(), false),
            alternating_sequence(cfg.n()),
            template_stress_sequence(cfg.n())};
}

void expect_identical_registers(const hw::testing_block& oracle,
                                const hw::testing_block& fast,
                                const std::string& context)
{
    ASSERT_EQ(oracle.registers().size(), fast.registers().size());
    for (std::size_t i = 0; i < oracle.registers().size(); ++i) {
        EXPECT_EQ(oracle.registers().read_raw(i),
                  fast.registers().read_raw(i))
            << context << ": register "
            << oracle.registers().entry(i).name;
    }
    EXPECT_EQ(oracle.bits_consumed(), fast.bits_consumed()) << context;
    EXPECT_EQ(oracle.done(), fast.done()) << context;
}

// ---------------------------------------------------------------------------
// Testing block: run() vs run_words() over every paper design point.
// ---------------------------------------------------------------------------

class word_path_designs
    : public ::testing::TestWithParam<hw::block_config> {};

TEST_P(word_path_designs, run_words_matches_run_bit_exactly)
{
    const hw::block_config cfg = GetParam();
    for (const bit_sequence& seq : stress_sequences(cfg)) {
        hw::testing_block oracle(cfg);
        hw::testing_block fast(cfg);
        oracle.run(seq);
        fast.run_words(seq.to_words());
        expect_identical_registers(oracle, fast, cfg.name);
    }
}

INSTANTIATE_TEST_SUITE_P(
    all_paper_designs, word_path_designs,
    ::testing::ValuesIn(core::all_paper_designs()),
    [](const ::testing::TestParamInfo<hw::block_config>& info) {
        std::string name = info.param.name;
        for (char& c : name) {
            if (c == '=' || c == ' ') {
                c = '_';
            }
        }
        return name;
    });

// ---------------------------------------------------------------------------
// Option coverage: marginal transfer and double buffering.
// ---------------------------------------------------------------------------

TEST(word_path, marginal_transfer_configuration_is_bit_exact)
{
    hw::block_config cfg = paper_design(16, tier::high);
    cfg.serial_transfer_marginals = true;
    const bit_sequence seq = random_sequence(fixture_seed(2), cfg.n());
    hw::testing_block oracle(cfg);
    hw::testing_block fast(cfg);
    oracle.run(seq);
    fast.run_words(seq.to_words());
    expect_identical_registers(oracle, fast, "marginal transfer");
}

TEST(word_path, double_buffered_configuration_is_bit_exact)
{
    hw::block_config cfg = paper_design(16, tier::high);
    cfg.double_buffered = true;
    const bit_sequence seq = random_sequence(fixture_seed(3), cfg.n());
    hw::testing_block oracle(cfg);
    hw::testing_block fast(cfg);
    oracle.run(seq);
    fast.run_words(seq.to_words());
    expect_identical_registers(oracle, fast, "double buffered");

    // Second window through each lane after restart: the latched first
    // window must be replaced by identical second-window results.
    const bit_sequence seq2 = random_sequence(fixture_seed(4), cfg.n());
    oracle.restart();
    fast.restart();
    oracle.run(seq2);
    fast.run_words(seq2.to_words());
    expect_identical_registers(oracle, fast, "double buffered window 2");
}

// ---------------------------------------------------------------------------
// Irregular chunking: feed_word with ragged nbits splits.
// ---------------------------------------------------------------------------

TEST(word_path, ragged_chunk_sizes_match_per_bit)
{
    const hw::block_config cfg = paper_design(16, tier::high);
    const bit_sequence seq = random_sequence(fixture_seed(5), cfg.n());

    hw::testing_block oracle(cfg);
    for (std::size_t i = 0; i < seq.size(); ++i) {
        oracle.feed(seq[i]);
    }
    oracle.finish();

    hw::testing_block fast(cfg);
    trng::xoshiro256ss chunk_rng(fixture_seed(6));
    std::size_t pos = 0;
    while (pos < seq.size()) {
        std::size_t take = 1 + chunk_rng.next() % 64;
        if (take > seq.size() - pos) {
            take = seq.size() - pos;
        }
        std::uint64_t word = 0;
        for (std::size_t i = 0; i < take; ++i) {
            word |= static_cast<std::uint64_t>(seq[pos + i] ? 1 : 0) << i;
        }
        fast.feed_word(word, static_cast<unsigned>(take));
        pos += take;
    }
    fast.finish();
    expect_identical_registers(oracle, fast, "ragged chunks");
}

TEST(word_path, span_lane_odd_chunk_lengths_match_per_bit)
{
    // Fixed odd chunk lengths (none a multiple of 64) walk the span
    // entry point through every word offset: each chunk exercises the
    // kernels' masked tail, and each next chunk starts unaligned.
    const hw::block_config cfg = paper_design(16, tier::high);
    const bit_sequence seq = random_sequence(fixture_seed(14), cfg.n());

    hw::testing_block oracle(cfg);
    oracle.run(seq);

    for (const std::size_t chunk_bits :
         {std::size_t{100}, std::size_t{997}, std::size_t{4097}}) {
        hw::testing_block fast(cfg);
        std::size_t pos = 0;
        while (pos < seq.size()) {
            const std::size_t take =
                std::min(chunk_bits, seq.size() - pos);
            std::vector<std::uint64_t> words((take + 63) / 64, 0);
            for (std::size_t i = 0; i < take; ++i) {
                words[i / 64] |=
                    static_cast<std::uint64_t>(seq[pos + i] ? 1 : 0)
                    << (i % 64);
            }
            fast.feed_span(words.data(), take);
            pos += take;
        }
        fast.finish();
        expect_identical_registers(
            oracle, fast,
            "span chunks of " + std::to_string(chunk_bits));
    }
}

TEST(word_path, span_lane_rejects_overrun)
{
    hw::testing_block block(paper_design(7, tier::light));
    const std::vector<std::uint64_t> words(3, 0);
    // 192 bits into a 128-bit sequence must be refused up front.
    EXPECT_THROW(block.feed_span(words.data(), 192), std::logic_error);
    block.feed_span(words.data(), 128);
    EXPECT_THROW(block.feed_span(words.data(), 1), std::logic_error);
}

TEST(word_path, feed_word_rejects_bad_sizes)
{
    hw::testing_block block(paper_design(7, tier::light));
    EXPECT_THROW(block.feed_word(0, 0), std::invalid_argument);
    EXPECT_THROW(block.feed_word(0, 65), std::invalid_argument);
    for (int i = 0; i < 2; ++i) {
        block.feed_word(0, 64); // n = 128: two full words
    }
    EXPECT_THROW(block.feed_word(0, 1), std::logic_error);
}

TEST(word_path, run_words_rejects_wrong_buffer_size)
{
    hw::testing_block block(paper_design(7, tier::light));
    EXPECT_THROW(block.run_words(std::vector<std::uint64_t>(3)),
                 std::invalid_argument);
}

TEST(word_path, shared_window_engine_must_override_consume_word)
{
    // An engine that declares it watches the shared template window but
    // inherits the per-bit consume_word default would silently read a
    // stale window on the word lane; the base class refuses loudly.
    class lazy_engine final : public hw::engine {
    public:
        lazy_engine() : hw::engine("lazy") {}
        void consume(bool, std::uint64_t) override {}
        bool watches_shared_window() const override { return true; }
        void add_registers(hw::register_map&) const override {}

    protected:
        rtl::resources self_cost() const override { return {}; }
        void self_reset() override {}
    };
    lazy_engine engine;
    engine.consume(true, 0); // per-bit lane stays usable
    EXPECT_THROW(engine.consume_word(0, 64, 0), std::logic_error);
}

// ---------------------------------------------------------------------------
// SP 800-90B health-test engines.
// ---------------------------------------------------------------------------

void drive_health_pair(const bit_sequence& seq, unsigned chunk_seed,
                       hw::repetition_count_hw& rct_oracle,
                       hw::repetition_count_hw& rct_fast,
                       hw::adaptive_proportion_hw& apt_oracle,
                       hw::adaptive_proportion_hw& apt_fast)
{
    for (std::size_t i = 0; i < seq.size(); ++i) {
        rct_oracle.consume(seq[i], i);
        apt_oracle.consume(seq[i], i);
    }
    trng::xoshiro256ss chunk_rng(chunk_seed);
    std::size_t pos = 0;
    while (pos < seq.size()) {
        std::size_t take = 1 + chunk_rng.next() % 64;
        if (take > seq.size() - pos) {
            take = seq.size() - pos;
        }
        std::uint64_t word = 0;
        for (std::size_t i = 0; i < take; ++i) {
            word |= static_cast<std::uint64_t>(seq[pos + i] ? 1 : 0) << i;
        }
        rct_fast.consume_word(word, static_cast<unsigned>(take), pos);
        apt_fast.consume_word(word, static_cast<unsigned>(take), pos);
        pos += take;
    }
}

TEST(word_path, health_tests_match_per_bit_on_random_stream)
{
    const bit_sequence seq = random_sequence(fixture_seed(7), 1 << 14);
    hw::repetition_count_hw rct_oracle(21), rct_fast(21);
    hw::adaptive_proportion_hw apt_oracle(10, 700), apt_fast(10, 700);
    drive_health_pair(seq, 11, rct_oracle, rct_fast, apt_oracle, apt_fast);
    EXPECT_EQ(rct_oracle.current_run(), rct_fast.current_run());
    EXPECT_EQ(rct_oracle.longest_run(), rct_fast.longest_run());
    EXPECT_EQ(rct_oracle.alarm(), rct_fast.alarm());
    EXPECT_EQ(apt_oracle.current_count(), apt_fast.current_count());
    EXPECT_EQ(apt_oracle.alarm(), apt_fast.alarm());
}

TEST(word_path, health_tests_match_per_bit_on_sticky_stream)
{
    // Sticky source: long equal runs trip the RCT on both lanes alike
    // (runs average ~33 bits, far beyond the cutoff of 21; the APT stays
    // quiet because the 0-runs and 1-runs balance within its window).
    trng::markov_source src(fixture_seed(8), 0.97);
    const bit_sequence seq = src.generate(1 << 12);
    hw::repetition_count_hw rct_oracle(21), rct_fast(21);
    hw::adaptive_proportion_hw apt_oracle(10, 700), apt_fast(10, 700);
    drive_health_pair(seq, 13, rct_oracle, rct_fast, apt_oracle, apt_fast);
    EXPECT_EQ(rct_oracle.alarm(), rct_fast.alarm());
    EXPECT_TRUE(rct_fast.alarm());
    EXPECT_EQ(rct_oracle.longest_run(), rct_fast.longest_run());
    EXPECT_EQ(apt_oracle.current_count(), apt_fast.current_count());
    EXPECT_EQ(apt_oracle.alarm(), apt_fast.alarm());
}

TEST(word_path, health_tests_match_per_bit_on_stuck_stream)
{
    // Total failure: every bit matches the window reference, so the APT
    // must alarm on both lanes (and the RCT trivially does too).
    const bit_sequence seq(1 << 12, true);
    hw::repetition_count_hw rct_oracle(21), rct_fast(21);
    hw::adaptive_proportion_hw apt_oracle(10, 700), apt_fast(10, 700);
    drive_health_pair(seq, 17, rct_oracle, rct_fast, apt_oracle, apt_fast);
    EXPECT_EQ(rct_oracle.alarm(), rct_fast.alarm());
    EXPECT_TRUE(rct_fast.alarm());
    EXPECT_EQ(rct_oracle.longest_run(), rct_fast.longest_run());
    EXPECT_EQ(rct_oracle.current_run(), rct_fast.current_run());
    EXPECT_EQ(apt_oracle.current_count(), apt_fast.current_count());
    EXPECT_EQ(apt_oracle.alarm(), apt_fast.alarm());
    EXPECT_TRUE(apt_fast.alarm());
}

// ---------------------------------------------------------------------------
// Bulk word generation.
// ---------------------------------------------------------------------------

TEST(word_path, xoshiro_next_bits64_matches_bit_stream)
{
    trng::xoshiro256ss bits(kCanonicalSeed);
    trng::xoshiro256ss words(kCanonicalSeed);
    // Misalign the word generator's internal buffer first.
    for (int i = 0; i < 13; ++i) {
        EXPECT_EQ(bits.next_bit(), words.next_bit());
    }
    for (int w = 0; w < 8; ++w) {
        const std::uint64_t word = words.next_bits64();
        for (unsigned i = 0; i < 64; ++i) {
            ASSERT_EQ(bits.next_bit(), ((word >> i) & 1u) != 0)
                << "word " << w << " bit " << i;
        }
    }
    // And bits drawn after the bulk run stay in sync.
    for (int i = 0; i < 13; ++i) {
        EXPECT_EQ(bits.next_bit(), words.next_bit());
    }
}

TEST(word_path, ideal_source_fill_words_matches_bit_stream)
{
    trng::ideal_source bit_src(fixture_seed(9));
    trng::ideal_source word_src(fixture_seed(9));
    const auto words = word_src.generate_words(16);
    const bit_sequence seq = bit_src.generate(16 * 64);
    EXPECT_EQ(bit_sequence::from_words(words, 16 * 64), seq);
}

TEST(word_path, default_fill_words_matches_bit_stream)
{
    // biased_source does not override fill_words: the base-class
    // assembler must still be bit-exact.
    trng::biased_source bit_src(fixture_seed(10), 0.3);
    trng::biased_source word_src(fixture_seed(10), 0.3);
    const auto words = word_src.generate_words(4);
    const bit_sequence seq = bit_src.generate(4 * 64);
    EXPECT_EQ(bit_sequence::from_words(words, 4 * 64), seq);
}

TEST(word_path, bit_sequence_word_round_trip)
{
    const bit_sequence seq = random_sequence(fixture_seed(11), 1000);
    const auto words = seq.to_words();
    EXPECT_EQ(words.size(), 16u); // ceil(1000 / 64)
    EXPECT_EQ(bit_sequence::from_words(words, 1000), seq);
    EXPECT_THROW(bit_sequence::from_words(words, 1025), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Monitor: end-to-end verdict equivalence and length validation.
// ---------------------------------------------------------------------------

TEST(word_path, monitor_word_lane_produces_identical_verdicts)
{
    const hw::block_config cfg = paper_design(16, tier::high);
    core::monitor oracle(cfg, 0.01);
    core::monitor fast(cfg, 0.01);
    trng::ideal_source bit_src(fixture_seed(12));
    trng::ideal_source word_src(fixture_seed(12));
    for (int w = 0; w < 3; ++w) {
        const auto a = oracle.test_window(bit_src);
        const auto b = fast.test_window_words(word_src);
        ASSERT_EQ(a.software.verdicts.size(), b.software.verdicts.size());
        EXPECT_EQ(a.software.all_pass, b.software.all_pass);
        for (std::size_t i = 0; i < a.software.verdicts.size(); ++i) {
            EXPECT_EQ(a.software.verdicts[i].pass,
                      b.software.verdicts[i].pass);
            EXPECT_EQ(a.software.verdicts[i].statistic,
                      b.software.verdicts[i].statistic)
                << a.software.verdicts[i].name << " window " << w;
        }
        EXPECT_EQ(a.sw_cycles, b.sw_cycles);
    }
}

TEST(word_path, monitor_sequence_lanes_agree)
{
    const hw::block_config cfg = paper_design(7, tier::medium);
    const bit_sequence seq = random_sequence(fixture_seed(13), cfg.n());
    core::monitor oracle(cfg, 0.01);
    core::monitor fast(cfg, 0.01);
    const auto a = oracle.test_sequence(seq);
    const auto b = fast.test_sequence_words(seq.to_words());
    EXPECT_EQ(a.software.all_pass, b.software.all_pass);
    ASSERT_EQ(a.software.verdicts.size(), b.software.verdicts.size());
    for (std::size_t i = 0; i < a.software.verdicts.size(); ++i) {
        EXPECT_EQ(a.software.verdicts[i].statistic,
                  b.software.verdicts[i].statistic);
    }
}

TEST(word_path, monitor_rejects_wrong_length_with_clear_error)
{
    core::monitor mon(paper_design(7, tier::light), 0.01);
    try {
        mon.test_sequence(bit_sequence(100, false));
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("128"), std::string::npos)
            << "message should name the expected length: " << what;
        EXPECT_NE(what.find("100"), std::string::npos)
            << "message should name the actual length: " << what;
    }
    // Too long is rejected up front as well, not mid-stream.
    EXPECT_THROW(mon.test_sequence(bit_sequence(256, false)),
                 std::invalid_argument);
    EXPECT_THROW(mon.test_sequence_words(std::vector<std::uint64_t>(3)),
                 std::invalid_argument);
}

} // namespace
