// Tests of the adaptive escalation supervisor: configuration validation,
// the escalate -> confirm -> de-escalate timeline, evidence-ring
// bounding, mixed-length window accounting, determinism and the JSON
// event log.
#include "base/json.hpp"
#include "base/ring_buffer.hpp"
#include "core/design_config.hpp"
#include "core/stream.hpp"
#include "core/supervisor.hpp"
#include "trng/entropy_source.hpp"
#include "trng/sources.hpp"

#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

using namespace otf;
using core::paper_design;
using core::supervision_event_kind;
using core::supervision_state;
using core::tier;

core::supervisor_config small_config()
{
    core::supervisor_config cfg;
    cfg.baseline = paper_design(7, tier::light);
    cfg.escalated = paper_design(7, tier::medium);
    cfg.alpha = 0.001;
    cfg.fail_threshold = 2;
    cfg.policy_window = 4;
    cfg.evidence_windows = 4;
    cfg.dwell_windows = 4;
    return cfg;
}

/// Ideal stream except a stuck-at-one burst between two absolute bit
/// indexes -- a deterministic fault pulse for timeline tests.  The inner
/// generator always advances, so the post-burst stream is the healthy
/// stream shifted by nothing (same draws, some overridden).
class burst_source final : public trng::entropy_source {
public:
    burst_source(std::uint64_t seed, std::uint64_t from_bit,
                 std::uint64_t to_bit)
        : inner_(seed), from_(from_bit), to_(to_bit)
    {
    }

    bool next_bit() override
    {
        const std::uint64_t i = index_++;
        const bool healthy = inner_.next_bit();
        return (i >= from_ && i < to_) ? true : healthy;
    }

    std::string name() const override { return "burst"; }

private:
    trng::ideal_source inner_;
    std::uint64_t from_;
    std::uint64_t to_;
    std::uint64_t index_ = 0;
};

TEST(supervisor_config, validation)
{
    {
        core::supervisor_config cfg = small_config();
        cfg.baseline.log2_n = 5; // n = 32 < one word
        EXPECT_THROW(cfg.validate(), std::invalid_argument);
    }
    {
        core::supervisor_config cfg = small_config();
        cfg.evidence_windows = 0;
        EXPECT_THROW(cfg.validate(), std::invalid_argument);
    }
    {
        core::supervisor_config cfg = small_config();
        cfg.dwell_windows = 0;
        EXPECT_THROW(cfg.validate(), std::invalid_argument);
    }
    {
        core::supervisor_config cfg = small_config();
        cfg.fail_threshold = 9;
        cfg.policy_window = 8;
        EXPECT_THROW(cfg.validate(), std::invalid_argument);
    }
    {
        core::supervisor_config cfg = small_config();
        cfg.offline_min_failures = 0;
        EXPECT_THROW(cfg.validate(), std::invalid_argument);
    }
    EXPECT_NO_THROW(small_config().validate());
}

TEST(supervisor, escalates_and_confirms_on_a_bad_source)
{
    core::supervisor_config cfg = small_config();
    cfg.dwell_windows = 1000; // never de-escalate in this run
    core::supervisor sup(cfg);

    trng::biased_source bad(42, 0.95);
    const auto rep = sup.run(bad, 24);

    EXPECT_EQ(rep.windows, 24u);
    EXPECT_EQ(rep.escalations, 1u);
    EXPECT_EQ(rep.confirmed_escalations, 1u)
        << "a 95%-ones stream must fail the offline battery";
    EXPECT_EQ(rep.de_escalations, 0u);
    EXPECT_EQ(rep.final_state, supervision_state::escalated);
    EXPECT_TRUE(rep.alarm);
    EXPECT_LT(rep.first_escalation_window, 4u)
        << "2-of-4 on an always-failing stream escalates immediately";
    EXPECT_GT(rep.windows_escalated, 16u);

    // Timeline order: the alarm rises, then the block escalates, then
    // the offline confirmation lands -- all as structured events.
    ASSERT_GE(rep.events.size(), 3u);
    EXPECT_EQ(rep.events[0].kind, supervision_event_kind::alarm_raised);
    EXPECT_EQ(rep.events[1].kind, supervision_event_kind::escalated);
    EXPECT_EQ(rep.events[1].from_design, cfg.baseline.name);
    EXPECT_EQ(rep.events[1].to_design, cfg.escalated.name);
    EXPECT_EQ(rep.events[2].kind, supervision_event_kind::confirmed);
    ASSERT_TRUE(rep.events[2].confirmation.has_value());
    EXPECT_TRUE(rep.events[2].confirmation->confirmed);
    EXPECT_GT(rep.events[2].confirmation->battery.failed, 1u);

    // The supervisor's monitor now runs the escalated design.
    EXPECT_EQ(sup.inner().config().name, cfg.escalated.name);
}

TEST(supervisor, null_source_stays_at_baseline)
{
    core::supervisor_config cfg = small_config();
    core::supervisor sup(cfg);
    trng::ideal_source healthy(7);
    const auto rep = sup.run(healthy, 32);

    EXPECT_EQ(rep.windows, 32u);
    EXPECT_EQ(rep.escalations, 0u);
    EXPECT_EQ(rep.final_state, supervision_state::baseline);
    EXPECT_EQ(rep.first_escalation_window, rep.windows)
        << "the sentinel for 'never escalated'";
    EXPECT_EQ(rep.bits, 32u * cfg.baseline.n());
}

TEST(supervisor, pulse_attack_escalates_confirms_and_de_escalates)
{
    core::supervisor_config cfg = small_config();
    cfg.dwell_windows = 4;
    core::supervisor sup(cfg);

    // Stuck-at-one from window 4 to window 10 (bits 512..1280), healthy
    // before and after.
    burst_source source(99, 4 * 128, 10 * 128);
    const auto rep = sup.run(source, 40);

    EXPECT_EQ(rep.escalations, 1u);
    EXPECT_EQ(rep.confirmed_escalations, 1u);
    EXPECT_EQ(rep.de_escalations, 1u);
    EXPECT_EQ(rep.final_state, supervision_state::baseline);
    EXPECT_FALSE(rep.alarm) << "de-escalation re-arms the policy";
    EXPECT_GE(rep.first_escalation_window, 4u);

    // The timeline must read: alarm -> escalated -> confirmed ->
    // alarm_cleared -> de_escalated.
    std::vector<supervision_event_kind> kinds;
    kinds.reserve(rep.events.size());
    for (const auto& ev : rep.events) {
        kinds.push_back(ev.kind);
    }
    const std::vector<supervision_event_kind> expected{
        supervision_event_kind::alarm_raised,
        supervision_event_kind::escalated,
        supervision_event_kind::confirmed,
        supervision_event_kind::alarm_cleared,
        supervision_event_kind::de_escalated};
    EXPECT_EQ(kinds, expected);
    EXPECT_EQ(rep.events.back().to_design, cfg.baseline.name);
    EXPECT_GT(rep.events.back().window_index,
              rep.events[1].window_index);
}

TEST(supervisor, evidence_ring_is_bounded)
{
    core::supervisor_config cfg = small_config();
    cfg.evidence_windows = 3;
    cfg.fail_threshold = 3;
    cfg.policy_window = 4;
    core::supervisor sup(cfg);
    trng::biased_source bad(5, 0.95);
    const auto rep = sup.run(bad, 16);

    ASSERT_EQ(rep.escalations, 1u);
    const auto* confirmed = [&]() -> const core::supervision_event* {
        for (const auto& ev : rep.events) {
            if (ev.kind == supervision_event_kind::confirmed) {
                return &ev;
            }
        }
        return nullptr;
    }();
    ASSERT_NE(confirmed, nullptr);
    EXPECT_EQ(confirmed->confirmation->evidence_windows, 3u)
        << "the ring must cap at evidence_windows";
    EXPECT_EQ(confirmed->confirmation->evidence_bits, 3u * 128u);
}

TEST(supervisor, escalation_to_longer_windows_reframes_the_stream)
{
    // The heavy design has 4x the baseline window: after escalation the
    // pump must assemble 512-bit windows from the same word stream
    // without losing a word.
    core::supervisor_config cfg = small_config();
    cfg.escalated = core::custom_design(
        9, hw::test_set{}
               .with(hw::test_id::frequency)
               .with(hw::test_id::runs)
               .with(hw::test_id::cumulative_sums));
    cfg.dwell_windows = 1000;
    core::supervisor sup(cfg);

    trng::biased_source bad(11, 0.9);
    const auto rep = sup.run(bad, 20);

    ASSERT_EQ(rep.escalations, 1u);
    EXPECT_EQ(rep.final_state, supervision_state::escalated);
    const std::uint64_t baseline_windows =
        rep.windows - rep.windows_escalated;
    EXPECT_EQ(rep.bits,
              baseline_windows * 128u + rep.windows_escalated * 512u)
        << "mixed-length windows must account bit-exactly";
    EXPECT_EQ(sup.inner().config().n(), 512u);
}

TEST(supervisor, deterministic_for_a_fixed_seed)
{
    const auto once = [] {
        core::supervisor_config cfg = small_config();
        core::supervisor sup(cfg);
        burst_source source(1234, 3 * 128, 9 * 128);
        return sup.run(source, 32);
    };
    const auto a = once();
    const auto b = once();
    EXPECT_EQ(a.windows, b.windows);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.bits, b.bits);
    EXPECT_EQ(a.escalations, b.escalations);
    EXPECT_EQ(a.de_escalations, b.de_escalations);
    EXPECT_EQ(a.failures_by_test, b.failures_by_test);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].kind, b.events[i].kind) << i;
        EXPECT_EQ(a.events[i].window_index, b.events[i].window_index)
            << i;
    }
}

TEST(supervisor, every_ingest_lane_agrees_with_the_per_bit_oracle)
{
    const auto run_lane = [](core::ingest_lane lane) {
        core::supervisor_config cfg = small_config();
        cfg.lane = lane;
        core::supervisor sup(cfg);
        burst_source source(77, 2 * 128, 8 * 128);
        return sup.run(source, 24);
    };
    const auto bit = run_lane(core::ingest_lane::per_bit);
    for (const core::ingest_lane lane :
         {core::ingest_lane::word, core::ingest_lane::span}) {
        const auto fast = run_lane(lane);
        EXPECT_EQ(fast.failures, bit.failures);
        EXPECT_EQ(fast.escalations, bit.escalations);
        EXPECT_EQ(fast.de_escalations, bit.de_escalations);
        EXPECT_EQ(fast.failures_by_test, bit.failures_by_test);
        EXPECT_EQ(fast.events.size(), bit.events.size());
    }
}

TEST(supervisor, event_log_serializes_as_json)
{
    core::supervisor_config cfg = small_config();
    core::supervisor sup(cfg);
    trng::biased_source bad(21, 0.95);
    sup.run(bad, 12);

    json_writer json;
    json.begin_object();
    sup.write_events(json, "events");
    json.end_object();
    const std::string text = json.str();
    EXPECT_NE(text.find("\"escalated\""), std::string::npos);
    EXPECT_NE(text.find("\"confirmation\""), std::string::npos);
    EXPECT_NE(text.find("\"battery\""), std::string::npos);
    EXPECT_NE(text.find(cfg.escalated.name), std::string::npos);
}

// ---------------------------------------------------------------------
// Checkpoint / restore: register-exact continuation.
// ---------------------------------------------------------------------

/// Drive `sup` for exactly `windows` windows from `source` through the
/// external pipeline, producing exactly the words those windows need --
/// so the source's position afterwards is the precise window boundary
/// and a later segment continues the very same stream.
void drive(core::supervisor& sup, trng::entropy_source& source,
           std::uint64_t windows)
{
    const std::size_t nwords = sup.inner().config().n() / 64;
    base::ring_buffer ring(core::default_ring_words(nwords));
    core::producer_options opts;
    opts.total_words = windows * nwords;
    core::word_producer producer(source, ring, opts);
    core::window_pump pump(ring, sup.inner());
    pump.set_tap(sup.tap());
    pump.set_barrier(sup.barrier());
    core::run_pipeline(producer, pump, sup.sink(), windows);
}

/// Everything a continuation must reproduce -- counters, verdict state
/// and the full event timeline with bitwise P-values (stream/timing
/// telemetry excluded: wall clock is not state).
void expect_report_eq(const core::supervision_report& a,
                      const core::supervision_report& b)
{
    EXPECT_EQ(a.windows, b.windows);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.bits, b.bits);
    EXPECT_EQ(a.escalations, b.escalations);
    EXPECT_EQ(a.confirmed_escalations, b.confirmed_escalations);
    EXPECT_EQ(a.de_escalations, b.de_escalations);
    EXPECT_EQ(a.windows_escalated, b.windows_escalated);
    EXPECT_EQ(a.first_escalation_window, b.first_escalation_window);
    EXPECT_EQ(a.alarm, b.alarm);
    EXPECT_EQ(a.final_state, b.final_state);
    EXPECT_EQ(a.failures_by_test, b.failures_by_test);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i], b.events[i]) << "event " << i;
    }
}

/// Run `total` windows in one piece, then again split at window `k`
/// with a serialize/parse/restore handover, and demand identity.
void check_split(const core::supervisor_config& cfg, std::uint64_t seed,
                 std::uint64_t burst_from_window,
                 std::uint64_t burst_to_window, std::uint64_t total,
                 std::uint64_t k)
{
    const std::uint64_t n = cfg.baseline.n();

    core::supervisor whole(cfg);
    burst_source a(seed, burst_from_window * n, burst_to_window * n);
    drive(whole, a, total);

    core::supervisor first(cfg);
    burst_source b(seed, burst_from_window * n, burst_to_window * n);
    drive(first, b, k);
    const std::vector<std::uint8_t> bytes =
        core::serialize(first.checkpoint());

    core::supervisor second(cfg);
    second.restore(core::parse_checkpoint(bytes));
    drive(second, b, total - k);

    expect_report_eq(second.report(), whole.report());
    // The continuation's own next checkpoint equals the uninterrupted
    // run's -- the handover is invisible downstream too.
    EXPECT_EQ(second.checkpoint(), whole.checkpoint()) << "split at " << k;
}

TEST(supervisor_checkpoint, restore_continues_at_every_boundary)
{
    // A pulse attack whose timeline (alarm -> escalate -> confirm ->
    // dwell -> de-escalate) spans the run, split at EVERY window
    // boundary: mid-baseline, mid-escalation and mid-dwell handovers
    // all continue register-exact.
    const core::supervisor_config cfg = small_config();
    const std::uint64_t total = 16;
    for (std::uint64_t k = 1; k < total; ++k) {
        check_split(cfg, 4242, 3, 9, total, k);
    }
}

TEST(supervisor_checkpoint, round_trips_across_paper_designs_and_lanes)
{
    // Register-exact continuation for every paper design x ingest lane,
    // with the split landing mid-escalation.  A cheap offline subset
    // keeps the confirmation battery affordable at n = 2^20.
    for (const unsigned log2_n : {7u, 16u, 20u}) {
        for (const tier t : {tier::light, tier::medium, tier::high}) {
            if (log2_n == 7 && t == tier::high) {
                continue; // the paper has no high tier at n = 128
            }
            core::supervisor_config cfg;
            cfg.baseline = paper_design(log2_n, t);
            cfg.escalated = paper_design(
                log2_n, log2_n == 7 ? tier::medium : tier::high);
            cfg.alpha = 0.001;
            cfg.fail_threshold = 2;
            cfg.policy_window = 4;
            cfg.evidence_windows = 2;
            cfg.dwell_windows = 3;
            cfg.offline_tests = nist::battery_selection()
                                    .with(1)
                                    .with(3)
                                    .with(13);
            for (const core::ingest_lane lane :
                 {core::ingest_lane::per_bit, core::ingest_lane::word,
                  core::ingest_lane::span}) {
                cfg.lane = lane;
                // Stuck-at-one from window 1 onward: escalated (and
                // confirmed) well before the split at window 4.
                check_split(cfg, 7000 + log2_n, 1, 8, 8, 4);
            }
        }
    }
}

TEST(supervisor_checkpoint, restore_rejects_bad_targets)
{
    const core::supervisor_config cfg = small_config();
    core::supervisor sup(cfg);
    burst_source source(55, 2 * 128, 8 * 128);
    drive(sup, source, 10);
    const core::supervisor_checkpoint cp = sup.checkpoint();

    // Restoring over a supervisor that has already observed windows
    // would silently discard its history.
    core::supervisor busy(cfg);
    trng::ideal_source healthy(3);
    drive(busy, healthy, 2);
    EXPECT_THROW(busy.restore(cp), std::logic_error);

    // A checkpoint whose evidence ring exceeds the target's policy
    // cannot have come from this configuration.
    core::supervisor_config narrow = cfg;
    narrow.evidence_windows = 2;
    core::supervisor mismatched(narrow);
    core::supervisor_checkpoint deep = cp;
    deep.evidence_ring.resize(4);
    EXPECT_THROW(mismatched.restore(deep), std::invalid_argument);
}

TEST(supervisor, dwell_counter_rides_every_event)
{
    // Regression: de-escalation dwell progress must be visible in the
    // event payloads (and their JSON), not just implied by the window
    // spacing.
    core::supervisor_config cfg = small_config();
    cfg.dwell_windows = 4;
    core::supervisor sup(cfg);
    burst_source source(99, 4 * 128, 10 * 128);
    const auto rep = sup.run(source, 40);

    ASSERT_EQ(rep.de_escalations, 1u);
    for (const auto& ev : rep.events) {
        switch (ev.kind) {
        case supervision_event_kind::alarm_raised:
        case supervision_event_kind::escalated:
            EXPECT_EQ(ev.dwell, 0u) << "no clean windows before escalation";
            break;
        case supervision_event_kind::alarm_cleared:
        case supervision_event_kind::de_escalated:
            EXPECT_EQ(ev.dwell, cfg.dwell_windows)
                << "de-escalation fires exactly at the dwell target";
            break;
        case supervision_event_kind::confirmed:
            EXPECT_LE(ev.dwell, cfg.dwell_windows);
            break;
        }
    }

    json_writer json;
    json.begin_object();
    sup.write_events(json, "events");
    json.end_object();
    EXPECT_NE(json.str().find("\"dwell\""), std::string::npos);
}

TEST(supervisor, external_pipeline_adapters_match_run)
{
    // Driving the hooks from an external pump (the fleet's channel loop
    // shape) must produce the same verdict/event stream as run().
    core::supervisor_config cfg = small_config();
    core::supervisor inline_sup(cfg);
    burst_source a(31, 2 * 128, 8 * 128);
    const auto via_run = inline_sup.run(a, 20);

    core::supervisor external(cfg);
    burst_source b(31, 2 * 128, 8 * 128);
    base::ring_buffer ring(core::default_ring_words(8));
    core::producer_options opts; // open-ended
    core::word_producer producer(b, ring, opts);
    core::window_pump pump(ring, external.inner());
    pump.set_tap(external.tap());
    pump.set_barrier(external.barrier());
    core::run_pipeline(producer, pump, external.sink(), 20);
    const auto via_hooks = external.report();

    EXPECT_EQ(via_hooks.windows, via_run.windows);
    EXPECT_EQ(via_hooks.failures, via_run.failures);
    EXPECT_EQ(via_hooks.escalations, via_run.escalations);
    EXPECT_EQ(via_hooks.events.size(), via_run.events.size());
}

} // namespace
