// Tests of the 32-segment PWL approximation of x log x (Fig. 3): error
// bounds, structural properties, and agreement between the plain and
// instruction-accounted evaluation paths.
#include "sw16/pwl_xlogx.hpp"

#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>

namespace {

using namespace otf::sw16;

TEST(pwl, endpoints_are_exact_zeros)
{
    EXPECT_EQ(pwl_xlogx_q16(0), 0u);
    EXPECT_EQ(pwl_xlogx_q16(1u << 16), 0u);
}

TEST(pwl, breakpoints_are_exact_to_rounding)
{
    for (unsigned i = 0; i <= pwl_segments; ++i) {
        const std::uint32_t x = i * (1u << 11);
        const double exact = xlogx_exact(static_cast<double>(i) / 32.0);
        const double approx = static_cast<double>(pwl_xlogx_q16(x)) / 65536.0;
        EXPECT_NEAR(approx, exact, 1.0 / 65536.0) << "breakpoint " << i;
    }
}

TEST(pwl, paper_error_bound_holds)
{
    // "resulting in less than 3% error": relative error on the interior
    // where g exceeds the fixed-point resolution (next to the zeros of g
    // at x = 0 and x = 1 any absolute scheme ends at 100% relative
    // error).  The absolute error is bounded by the first segment's chord
    // (~0.0116 at x = 1/64).
    EXPECT_LT(pwl_max_rel_error(1.0 / 32.0, 0.995), 0.03);
    EXPECT_LT(pwl_max_abs_error(), 0.012);
}

TEST(pwl, chord_always_underestimates_concave_g)
{
    // g(x) = -x ln x is concave, so linear interpolation between exact
    // breakpoints can never exceed the function by more than the
    // breakpoint rounding (1 LSB).
    for (std::uint32_t x = 1; x < (1u << 16); x += 37) {
        const double exact = xlogx_exact(static_cast<double>(x) / 65536.0);
        const double approx =
            static_cast<double>(pwl_xlogx_q16(x)) / 65536.0;
        EXPECT_LE(approx, exact + 2.0 / 65536.0) << "x=" << x;
    }
}

TEST(pwl, maximum_near_one_over_e)
{
    // The function peaks at x = 1/e with value 1/e = 0.3679.
    std::uint32_t best_x = 0;
    std::uint32_t best_y = 0;
    for (std::uint32_t x = 0; x <= (1u << 16); x += 16) {
        const std::uint32_t y = pwl_xlogx_q16(x);
        if (y > best_y) {
            best_y = y;
            best_x = x;
        }
    }
    EXPECT_NEAR(static_cast<double>(best_x) / 65536.0, 1.0 / M_E, 0.04);
    EXPECT_NEAR(static_cast<double>(best_y) / 65536.0, 1.0 / M_E, 0.01);
}

TEST(pwl, monotone_within_segments)
{
    // Within one linear segment the output moves monotonically.
    for (unsigned seg = 0; seg < pwl_segments; ++seg) {
        const std::uint32_t x0 = seg << 11;
        const std::uint32_t y_start = pwl_xlogx_q16(x0);
        const std::uint32_t y_end = pwl_xlogx_q16(x0 + 2047);
        const std::uint32_t y_mid = pwl_xlogx_q16(x0 + 1024);
        if (y_start <= y_end) {
            EXPECT_GE(y_mid + 1, y_start);
            EXPECT_LE(y_mid, y_end + 1);
        } else {
            EXPECT_LE(y_mid, y_start + 1);
            EXPECT_GE(y_mid + 1, y_end);
        }
    }
}

TEST(pwl, accounted_path_matches_plain_path)
{
    soft_cpu cpu(16);
    for (std::uint32_t x = 0; x <= (1u << 16); x += 997) {
        const reg r = pwl_xlogx(cpu, reg{static_cast<std::int64_t>(x), 17});
        EXPECT_EQ(r.value, static_cast<std::int64_t>(pwl_xlogx_q16(x)))
            << "x=" << x;
    }
}

TEST(pwl, accounted_path_charges_one_lut_per_eval)
{
    soft_cpu cpu(16);
    const unsigned evals = 24; // 16 + 8, the approximate-entropy pattern
    for (unsigned i = 0; i < evals; ++i) {
        (void)pwl_xlogx(cpu, reg{static_cast<std::int64_t>(i * 2048), 17});
    }
    EXPECT_EQ(cpu.counts().lut, evals)
        << "Table III LUT row = one lookup per pattern probability";
    EXPECT_GE(cpu.counts().mul, evals);
    EXPECT_GE(cpu.counts().add, evals);
}

TEST(pwl, out_of_range_clamps_to_zero)
{
    EXPECT_EQ(pwl_xlogx_q16(70000), 0u);
}

} // namespace
